"""Snapshot cadence management: re-snapshot, retain a chain, warm-start.

:class:`SnapshotManager` owns one durable-state directory::

    <directory>/snapshot.bin            the latest full snapshot (atomic replace)
    <directory>/wal.bin                 mutations since that snapshot
    <directory>/snapshot-<epoch>.bin    retained previous snapshot versions
    <directory>/wal-<epoch>.bin         sealed WAL segments continuing them
    <directory>/*.corrupt               quarantined files that failed checksum

It subscribes to the corpus's mutation journal: every register /
bulk-register / unregister is appended to the WAL *inside the corpus
lock* (so the log can never miss or reorder a mutation), and when the
cadence policy fires — every ``every_mutations`` mutations and/or every
``every_seconds`` seconds, evaluated at mutation time — the manager
writes a fresh snapshot.  The superseded snapshot is *retained* (hard
link, falling back to a copy) as ``snapshot-<epoch>.bin`` and the live
WAL is sealed beside it as ``wal-<epoch>.bin``, keeping the last
``keep_snapshots`` versions recoverable: each retained snapshot plus the
segment chain after it replays to exactly the newest state.  Restart is
``SnapshotManager.load(directory)`` (or ``Mileena.load``): restore the
newest *verifiable* snapshot — a corrupt one is logged, quarantined to
``<name>.corrupt``, and skipped in favour of the previous version — then
replay the sealed segments and the live WAL tail on top.

Listeners (the process backend) are notified after each snapshot with
``(path, epoch)`` so replica bootstrap state and envelope mutation logs
can be re-based onto the new snapshot; see
``repro.serving.backends.ProcessPoolBackend``.
"""

from __future__ import annotations

import logging
import os
import re
import shutil
from pathlib import Path

from repro.core.clock import WallClock
from repro.exceptions import PersistError, SnapshotCorrupt
from repro.obs import span
from repro.persist.snapshot import read_snapshot, snapshot_platform, write_snapshot
from repro.persist.wal import MutationWAL, apply_records, read_wal_records

SNAPSHOT_FILE = "snapshot.bin"
WAL_FILE = "wal.bin"

_VERSIONED_SNAPSHOT = re.compile(r"^snapshot-(\d{12})\.bin$")
_SEALED_SEGMENT = re.compile(r"^wal-(\d{12})\.bin$")

_LOG = logging.getLogger("repro.persist")


def quarantine_corrupt(path: Path) -> Path:
    """Rename a corrupt durable-state file to ``<name>.corrupt``.

    The bytes are preserved for forensics but taken out of every future
    load's candidate chain; an existing quarantine of the same name is
    overwritten (the newer corruption is the interesting one).
    """
    target = path.with_name(path.name + ".corrupt")
    with span("persist.snapshot_quarantine", path=str(path)):
        os.replace(path, target)
    return target


def versioned_snapshots(directory: str | Path) -> list[tuple[int, Path]]:
    """Retained ``(epoch, snapshot-<epoch>.bin)`` pairs, oldest first.

    Public because the replication follower walks the same chain the
    loader does when it has to re-bootstrap past a pruned WAL.
    """
    versions = []
    for path in Path(directory).iterdir():
        match = _VERSIONED_SNAPSHOT.match(path.name)
        if match:
            versions.append((int(match.group(1)), path))
    return sorted(versions)


def sealed_segments(directory: str | Path) -> list[tuple[int, Path]]:
    """Sealed ``(base epoch, wal-<epoch>.bin)`` pairs, oldest first.

    The base epoch is the epoch of the snapshot the segment *continues*
    (its first record is ``base + 1``).  Followers replay segments in this
    order on top of whatever snapshot they restored, then tail the live
    WAL — the epoch guard in :func:`~repro.persist.wal.apply_records`
    skips anything already covered.
    """
    segments = []
    for path in Path(directory).iterdir():
        match = _SEALED_SEGMENT.match(path.name)
        if match:
            segments.append((int(match.group(1)), path))
    return sorted(segments)


# Backwards-compatible internal aliases (pre-replication private names).
_versioned_snapshots = versioned_snapshots
_sealed_segments = sealed_segments


class SnapshotManager:
    """Keeps one platform's durable state current under a cadence policy.

    Parameters
    ----------
    platform:
        The :class:`~repro.core.platform.Mileena` whose corpus to journal.
    directory:
        Durable-state directory (created if missing).
    every_mutations:
        Re-snapshot after this many journaled mutations (``None`` = never
        by count).  This is also the bound on the WAL length — and, once
        the process backend is wired in, on its envelope mutation logs.
    every_seconds:
        Re-snapshot when this much wall time has passed since the last
        snapshot, checked when a mutation arrives (``None`` = never by
        time; an idle corpus is never re-snapshotted — its snapshot is
        already current).
    clock:
        Time source for ``every_seconds`` (defaults to the platform's
        clock, falling back to :class:`~repro.core.clock.WallClock`).
    fsync:
        Fsync WAL appends and snapshot writes (power-cut durability)
        instead of flush-only (process-crash durability, the default).
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`:
        ``persist.wal_records``, ``persist.snapshots``, and the
        ``persist.wal_length`` gauge land here.
    keep_snapshots:
        How many *previous* snapshot versions (and the sealed WAL
        segments continuing them) to retain beside the newest one.  Each
        retained version is a fallback if a newer snapshot file is found
        corrupt at load time; ``0`` disables the chain (newest-only, the
        pre-chain layout).
    """

    def __init__(
        self,
        platform,
        directory: str | Path,
        every_mutations: int | None = 64,
        every_seconds: float | None = None,
        clock: object | None = None,
        fsync: bool = False,
        metrics: object | None = None,
        keep_snapshots: int = 2,
    ) -> None:
        if every_mutations is not None and every_mutations <= 0:
            raise PersistError("every_mutations must be positive (or None)")
        if every_seconds is not None and every_seconds <= 0:
            raise PersistError("every_seconds must be positive (or None)")
        if keep_snapshots < 0:
            raise PersistError("keep_snapshots must be non-negative")
        self.keep_snapshots = keep_snapshots
        self.platform = platform
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_mutations = every_mutations
        self.every_seconds = every_seconds
        self.fsync = fsync
        self.metrics = metrics
        self.clock = clock or getattr(platform, "clock", None) or WallClock()
        self.wal = MutationWAL(self.wal_path, fsync=fsync)
        self.snapshot_epoch: int | None = None
        self._listeners: list = []
        self._seal_listeners: list = []
        self._mutations_since = 0
        self._last_snapshot_time = self.clock.now()
        self._attached = False

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_FILE

    # -- lifecycle ---------------------------------------------------------------
    def attach(self) -> "SnapshotManager":
        """Subscribe to the corpus journal; baseline the directory.

        A directory with no usable snapshot gets one immediately —
        otherwise a crash before the first cadence snapshot would lose
        every pre-attach registration.  A directory that already restores
        to the platform's exact epoch (the ``Mileena.load`` resume path)
        is left untouched and the WAL simply continues.  Any *other*
        epoch means the directory holds some different platform's history:
        attaching would silently overwrite durable state, so it refuses —
        resume with ``Mileena.load(directory)``, or point the manager at a
        fresh directory.
        """
        if self._attached:
            return self
        with self.platform.corpus.frozen():
            on_disk = self._on_disk_epoch()
            if on_disk is not None and on_disk != self.platform.corpus.epoch:
                raise PersistError(
                    f"{self.directory} already holds durable state restoring to "
                    f"epoch {on_disk}, but this platform is at epoch "
                    f"{self.platform.corpus.epoch}; resume it with "
                    f"Mileena.load({str(self.directory)!r}) or use a fresh "
                    f"directory"
                )
            self.platform.corpus.subscribe(self._observe)
            self._attached = True
            if on_disk is None:
                self.snapshot()
        return self

    def detach(self) -> None:
        """Stop journaling and release the WAL file handle."""
        if self._attached:
            self.platform.corpus.unsubscribe(self._observe)
            self._attached = False
        self.wal.close()

    def _on_disk_epoch(self) -> int | None:
        """Epoch the directory currently restores to, or None when unusable."""
        if not self.snapshot_path.exists():
            return None
        try:
            epoch = read_snapshot(self.snapshot_path)["epoch"]
        except SnapshotCorrupt as error:
            # The live platform is authoritative here and will re-baseline
            # the directory; keep the corrupt bytes for forensics.
            quarantined = quarantine_corrupt(self.snapshot_path)
            _LOG.warning(
                "snapshot %s failed verification at attach (%s); quarantined as %s",
                self.snapshot_path,
                error,
                quarantined.name,
            )
            return None
        except PersistError:
            return None
        self.snapshot_epoch = epoch
        last = self.wal.last_epoch
        return last if last is not None and last > epoch else epoch

    def add_listener(self, listener) -> None:
        """``listener(path, epoch)`` fires after every snapshot write.

        This is the *publish* hook: the path is the freshly replaced
        ``snapshot.bin`` and the epoch is the corpus state it captures.
        The process backend re-bases its envelope mutation log on it; the
        replicated backend records it so respawned followers warm-start
        from the newest image.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def add_seal_listener(self, listener) -> None:
        """``listener(path, base_epoch)`` fires after a WAL segment is sealed.

        The *seal* hook: when a cadence snapshot supersedes the live WAL,
        the log is rotated aside as ``wal-<base_epoch>.bin`` (the segment
        continuing snapshot ``base_epoch``) and this fires with its path.
        Fired inside the corpus lock, like the journal feed — listeners
        must be fast and must not mutate the corpus.  Followers in other
        processes do not need it (they discover segments by scanning the
        directory); it exists for primary-side bookkeeping and telemetry.
        """
        self._seal_listeners.append(listener)

    def remove_seal_listener(self, listener) -> None:
        if listener in self._seal_listeners:
            self._seal_listeners.remove(listener)

    # -- journaling --------------------------------------------------------------
    def _observe(self, epoch: int, op: str, payload: object) -> None:
        # Runs inside the corpus lock: the WAL sees every mutation exactly
        # once, in commit order, and a cadence snapshot taken here is a
        # consistent image of the post-mutation corpus.
        self.wal.append(epoch, op, payload)
        self._mutations_since += 1
        if self.metrics is not None:
            self.metrics.increment("persist.wal_records")
            self.metrics.set_gauge("persist.wal_length", self.wal.record_count)
        if self._cadence_due():
            self.snapshot()

    def _cadence_due(self) -> bool:
        if self.every_mutations is not None and self._mutations_since >= self.every_mutations:
            return True
        if (
            self.every_seconds is not None
            and self.clock.now() - self._last_snapshot_time >= self.every_seconds
        ):
            return True
        return False

    # -- snapshotting ------------------------------------------------------------
    def snapshot(self) -> Path:
        """Write a fresh snapshot now; retain the superseded version.

        Safe both from the journal observer (corpus lock already held —
        ``frozen`` is re-entrant) and from any other thread: the whole
        retain → seal → capture → write sequence runs under the corpus
        lock, which is what makes concurrent snapshot calls and racing
        mutations impossible to interleave with the file/WAL pair.  The
        cost is that *mutations* stall for the write's duration
        (``BENCH_persist.json``'s ``save_ms`` per corpus size — queries
        never take this lock); moving the write off the lock is a
        ROADMAP item, not worth the snapshot/WAL coherence risk here.

        Crash windows: the previous snapshot is retained (hard link) and
        the WAL sealed as its segment *before* the new ``snapshot.bin``
        is published, so every intermediate state still replays to the
        full mutation history — the chain loader walks newest-usable
        snapshot plus every later segment, and the epoch guard in
        :func:`~repro.persist.wal.apply_records` skips whatever the
        restored snapshot already covers.
        """
        corpus = self.platform.corpus
        with corpus.frozen(), span("persist.snapshot_save") as save:
            sections = snapshot_platform(self.platform)
            self._retain_previous()
            write_snapshot(self.snapshot_path, sections, fsync=self.fsync)
            self.snapshot_epoch = sections["epoch"]
            save.annotate(epoch=self.snapshot_epoch)
            self._prune_chain()
            self._mutations_since = 0
            self._last_snapshot_time = self.clock.now()
            if self.metrics is not None:
                self.metrics.increment("persist.snapshots")
                self.metrics.set_gauge("persist.wal_length", 0)
            for listener in list(self._listeners):
                listener(self.snapshot_path, self.snapshot_epoch)
        return self.snapshot_path

    def _retain_previous(self) -> None:
        """Link the outgoing snapshot into the chain and seal its WAL.

        With ``keep_snapshots == 0``, or with no verified previous
        snapshot (first write into a directory), the WAL is simply
        truncated — the pre-chain behaviour.
        """
        previous_epoch = self.snapshot_epoch
        if (
            self.keep_snapshots > 0
            and previous_epoch is not None
            and self.snapshot_path.exists()
        ):
            retained = self.directory / f"snapshot-{previous_epoch:012d}.bin"
            if not retained.exists():
                try:
                    os.link(self.snapshot_path, retained)
                except OSError:
                    # Filesystems without hard links (or cross-device
                    # layouts) fall back to a byte copy.
                    shutil.copy2(self.snapshot_path, retained)
            sealed_path = self.directory / f"wal-{previous_epoch:012d}.bin"
            if self.wal.rotate(sealed_path):
                for listener in list(self._seal_listeners):
                    listener(sealed_path, previous_epoch)
        else:
            self.wal.truncate()

    def _prune_chain(self) -> None:
        """Drop retained versions beyond ``keep_snapshots`` (and their segments)."""
        versions = _versioned_snapshots(self.directory)
        excess = versions[: -self.keep_snapshots] if self.keep_snapshots else versions
        for _, path in excess:
            path.unlink(missing_ok=True)
        kept = versions[-self.keep_snapshots:] if self.keep_snapshots else []
        oldest_kept = kept[0][0] if kept else None
        for epoch, path in _sealed_segments(self.directory):
            if oldest_kept is None or epoch < oldest_kept:
                path.unlink(missing_ok=True)

    # -- restart -----------------------------------------------------------------
    @classmethod
    def load(cls, directory: str | Path):
        """Restore a platform from ``directory``: snapshot chain + WAL replay.

        Walks the snapshot candidates newest first (``snapshot.bin``,
        then the retained ``snapshot-<epoch>.bin`` versions).  A
        candidate that fails verification is logged, quarantined to
        ``<name>.corrupt``, and skipped — warm-start falls back to the
        previous version in the chain instead of raising.  On top of the
        restored snapshot every sealed WAL segment plus the live WAL is
        replayed in epoch order, so whichever version survived, the
        platform comes back at the newest journaled state.  A torn WAL
        tail (crash mid-append) is dropped; records the snapshot already
        covers are skipped by the epoch guard in
        :func:`repro.persist.wal.apply_records`.
        """
        from repro.persist.snapshot import restore_platform

        directory = Path(directory)
        candidates: list[Path] = []
        if (directory / SNAPSHOT_FILE).exists():
            candidates.append(directory / SNAPSHOT_FILE)
        candidates.extend(
            path for _, path in reversed(_versioned_snapshots(directory))
        )
        if not candidates:
            raise PersistError(f"{directory} holds no snapshot to restore")
        platform = None
        for candidate in candidates:
            try:
                sections = read_snapshot(candidate)
            except SnapshotCorrupt as error:
                quarantined = quarantine_corrupt(candidate)
                _LOG.warning(
                    "snapshot %s failed verification (%s); quarantined as %s, "
                    "falling back to the previous version in the chain",
                    candidate,
                    error,
                    quarantined.name,
                )
                continue
            platform = restore_platform(sections)
            break
        if platform is None:
            raise SnapshotCorrupt(
                f"every snapshot in {directory} failed verification "
                f"({len(candidates)} candidate(s) quarantined)"
            )
        # Sealed segments first (ascending base epoch), then the live WAL:
        # together they continue whichever snapshot version survived.
        for _, segment in _sealed_segments(directory):
            apply_records(platform.corpus, read_wal_records(segment))
        wal_path = directory / WAL_FILE
        if wal_path.exists():
            wal = MutationWAL(wal_path)
            try:
                apply_records(platform.corpus, wal.replay())
            finally:
                wal.close()
        return platform
