"""Tests for splitting, cross-validation, and the AutoML driver."""

import numpy as np
import pytest

from repro.ml import (
    AutoMLRegressor,
    LinearRegression,
    ModelConfig,
    cross_val_score,
    default_search_space,
    kfold_indices,
    train_test_split,
)


def linear_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = 1.0 + x @ np.array([1.0, 2.0, -1.0]) + rng.normal(scale=0.1, size=n)
    return x, y


def test_train_test_split_sizes_and_disjointness():
    x, y = linear_data(100)
    x_train, x_test, y_train, y_test = train_test_split(x, y, 0.25, random_state=0)
    assert len(x_test) == 25
    assert len(x_train) == 75
    assert len(y_train) == 75 and len(y_test) == 25


def test_train_test_split_validation():
    x, y = linear_data(10)
    with pytest.raises(ValueError):
        train_test_split(x, y, 0.0)
    with pytest.raises(ValueError):
        train_test_split(x, y[:-1])


def test_kfold_covers_all_rows_exactly_once():
    folds = kfold_indices(23, n_splits=4, random_state=1)
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(23))
    for train, test in folds:
        assert set(train) & set(test) == set()


def test_kfold_validation():
    with pytest.raises(ValueError):
        kfold_indices(10, n_splits=1)
    with pytest.raises(ValueError):
        kfold_indices(3, n_splits=5)


def test_cross_val_score_high_for_linear_model():
    x, y = linear_data()
    scores = cross_val_score(lambda: LinearRegression(), x, y, n_splits=4, random_state=0)
    assert len(scores) == 4
    assert min(scores) > 0.9


def test_automl_selects_reasonable_model():
    x, y = linear_data()
    automl = AutoMLRegressor(n_splits=3, random_state=0).fit(x, y)
    assert automl.result_ is not None
    assert automl.result_.best_cv_score > 0.9
    assert automl.score(x, y) > 0.9
    assert automl.result_.evaluated >= 1
    assert len(automl.result_.leaderboard) == automl.result_.evaluated


def test_automl_respects_time_budget():
    class FakeClock:
        def __init__(self):
            self.t = 0.0

        def now(self):
            self.t += 100.0  # every call advances far past the budget
            return self.t

    x, y = linear_data(60)
    automl = AutoMLRegressor(time_budget_seconds=50.0, clock=FakeClock(), n_splits=3).fit(x, y)
    # Budget exceeded after the first evaluation: only the cheapest configs run.
    assert automl.result_.evaluated < len(default_search_space())


def test_automl_requires_enough_rows():
    with pytest.raises(ValueError):
        AutoMLRegressor(n_splits=5).fit(np.zeros((3, 1)), np.zeros(3))


def test_custom_search_space():
    x, y = linear_data(80)
    space = [ModelConfig("only_linear", lambda: LinearRegression(), 0.1)]
    automl = AutoMLRegressor(search_space=space, n_splits=3).fit(x, y)
    assert automl.result_.best_name == "only_linear"
    assert automl.predict(x).shape == (80,)
