"""Tests for scalers, one-hot encoding, and the Featurizer."""

import numpy as np
import pytest

from repro.exceptions import RelationError
from repro.ml import Featurizer, MinMaxScaler, OneHotEncoder, StandardScaler, clip_matrix
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema


def test_standard_scaler_round_trip():
    rng = np.random.default_rng(0)
    matrix = rng.normal(loc=5.0, scale=3.0, size=(100, 2))
    scaler = StandardScaler()
    transformed = scaler.fit_transform(matrix)
    np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-9)
    np.testing.assert_allclose(scaler.inverse_transform(transformed), matrix)


def test_standard_scaler_constant_column():
    matrix = np.array([[1.0, 5.0], [1.0, 7.0]])
    transformed = StandardScaler().fit_transform(matrix)
    np.testing.assert_allclose(transformed[:, 0], 0.0)


def test_standard_scaler_requires_fit():
    with pytest.raises(RelationError):
        StandardScaler().transform(np.zeros((1, 1)))


def test_minmax_scaler_bounds():
    matrix = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
    transformed = MinMaxScaler().fit_transform(matrix)
    assert transformed.min() == 0.0
    assert transformed.max() == 1.0


def test_minmax_scaler_requires_fit():
    with pytest.raises(RelationError):
        MinMaxScaler().transform(np.zeros((1, 1)))


def test_clip_matrix():
    matrix = np.array([[-10.0, 0.5], [3.0, 2.0]])
    clipped = clip_matrix(matrix, 1.0)
    assert clipped.min() == -1.0
    assert clipped.max() == 1.0
    with pytest.raises(ValueError):
        clip_matrix(matrix, 0.0)


def test_one_hot_encoder_caps_vocabulary():
    values = ["a"] * 5 + ["b"] * 3 + ["c"] * 1 + ["d"] * 1
    encoder = OneHotEncoder(max_categories=2).fit(values)
    assert encoder.categories_ == ["a", "b"]
    matrix = encoder.transform(["a", "d", "b"])
    np.testing.assert_allclose(matrix, [[1, 0], [0, 0], [0, 1]])
    assert encoder.feature_names("col") == ["col=a", "col=b"]


def test_one_hot_encoder_requires_fit():
    with pytest.raises(RelationError):
        OneHotEncoder().transform(["a"])


def test_featurizer_numeric_only():
    relation = Relation(
        "r",
        {"x": [1.0, 2.0, np.nan], "y": [2.0, 4.0, 6.0]},
        Schema.from_spec({"x": NUMERIC, "y": NUMERIC}),
    )
    featurizer = Featurizer(target="y")
    design, target = featurizer.fit_transform(relation)
    assert design.shape == (3, 1)
    # NaN imputed to the mean of the finite values (1.5).
    assert design[2, 0] == pytest.approx(1.5)
    np.testing.assert_allclose(target, [2.0, 4.0, 6.0])


def test_featurizer_with_one_hot():
    relation = Relation(
        "r",
        {"city": ["nyc", "sf", "nyc"], "x": [1.0, 2.0, 3.0], "y": [1.0, 2.0, 3.0]},
        Schema.from_spec({"city": CATEGORICAL, "x": NUMERIC, "y": NUMERIC}),
    )
    featurizer = Featurizer(target="y", one_hot=True)
    design, _ = featurizer.fit_transform(relation)
    assert design.shape == (3, 3)  # x + 2 city dummies
    assert "city=nyc" in featurizer.feature_names_


def test_featurizer_missing_target_raises():
    relation = Relation("r", {"x": [1.0]})
    with pytest.raises(RelationError):
        Featurizer(target="y").fit(relation)


def test_featurizer_requires_fit_before_transform():
    relation = Relation("r", {"x": [1.0], "y": [1.0]})
    with pytest.raises(RelationError):
        Featurizer(target="y").transform(relation)


def test_featurizer_consistent_columns_between_train_and_test():
    train = Relation(
        "train",
        {"city": ["nyc", "sf"], "y": [1.0, 2.0]},
        Schema.from_spec({"city": CATEGORICAL, "y": NUMERIC}),
    )
    test = Relation(
        "test",
        {"city": ["la", "nyc"], "y": [3.0, 4.0]},
        Schema.from_spec({"city": CATEGORICAL, "y": NUMERIC}),
    )
    featurizer = Featurizer(target="y", one_hot=True).fit(train)
    design, _ = featurizer.transform(test)
    # "la" was never seen: its row is all zeros.
    np.testing.assert_allclose(design[0], 0.0)
