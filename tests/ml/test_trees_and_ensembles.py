"""Tests for the tree, forest, boosting, and MLP regressors."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    MLPRegressor,
    RandomForestRegressor,
)


def piecewise_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 2))
    y = np.where(x[:, 0] > 0, 5.0, -5.0) + 0.5 * x[:, 1] + rng.normal(scale=0.2, size=n)
    return x, y


def nonlinear_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 2))
    y = np.sin(2 * x[:, 0]) + x[:, 1] ** 2 + rng.normal(scale=0.1, size=n)
    return x, y


def test_tree_fits_piecewise_function():
    x, y = piecewise_data()
    tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
    assert tree.score(x, y) > 0.9


def test_tree_depth_zero_predicts_mean():
    x, y = piecewise_data(50)
    tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
    np.testing.assert_allclose(tree.predict(x), y.mean())


def test_tree_invalid_inputs():
    with pytest.raises(ValueError):
        DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        DecisionTreeRegressor().predict(np.zeros((1, 2)))


def test_tree_constant_target_is_single_leaf():
    x = np.arange(10, dtype=float).reshape(-1, 1)
    y = np.full(10, 7.0)
    tree = DecisionTreeRegressor().fit(x, y)
    np.testing.assert_allclose(tree.predict(x), 7.0)


def test_forest_beats_single_deep_tree_on_noise():
    x, y = nonlinear_data()
    x_test, y_test = nonlinear_data(seed=99)
    forest = RandomForestRegressor(n_estimators=15, max_depth=6, random_state=0).fit(x, y)
    assert forest.score(x_test, y_test) > 0.7


def test_forest_requires_fit_and_valid_params():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        RandomForestRegressor().predict(np.zeros((1, 2)))


def test_gbm_fits_nonlinear_function():
    x, y = nonlinear_data()
    x_test, y_test = nonlinear_data(seed=7)
    gbm = GradientBoostingRegressor(n_estimators=60, random_state=0).fit(x, y)
    assert gbm.score(x_test, y_test) > 0.8


def test_gbm_parameter_validation():
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor().predict(np.zeros((1, 2)))


def test_gbm_with_subsampling_still_learns():
    x, y = piecewise_data()
    gbm = GradientBoostingRegressor(n_estimators=40, subsample=0.7, random_state=0).fit(x, y)
    assert gbm.score(x, y) > 0.85


def test_mlp_learns_linear_relationship():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(400, 3))
    y = 2.0 + x @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.05, size=400)
    mlp = MLPRegressor(hidden_sizes=(16, 8), epochs=150, random_state=0).fit(x, y)
    assert mlp.score(x, y) > 0.9


def test_mlp_invalid_inputs():
    with pytest.raises(ValueError):
        MLPRegressor().fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        MLPRegressor().predict(np.zeros((1, 2)))
