"""Tests for regression metrics."""

import numpy as np
import pytest

from repro.ml import (
    adjusted_r2_score,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
)


def test_perfect_predictions():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == 1.0
    assert mean_squared_error(y, y) == 0.0
    assert mean_absolute_error(y, y) == 0.0


def test_mean_prediction_gives_zero_r2():
    y = np.array([1.0, 2.0, 3.0])
    prediction = np.full(3, y.mean())
    assert r2_score(y, prediction) == pytest.approx(0.0)


def test_r2_can_be_negative():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, np.array([10.0, -5.0, 7.0])) < 0.0


def test_constant_target_behaviour():
    y = np.array([2.0, 2.0, 2.0])
    assert r2_score(y, y) == 0.0
    assert r2_score(y, np.array([1.0, 2.0, 3.0])) == float("-inf")


def test_mse_rmse_relationship():
    y = np.array([0.0, 0.0])
    pred = np.array([3.0, 4.0])
    assert mean_squared_error(y, pred) == pytest.approx(12.5)
    assert root_mean_squared_error(y, pred) == pytest.approx(np.sqrt(12.5))


def test_mae():
    assert mean_absolute_error([1.0, -1.0], [0.0, 0.0]) == 1.0


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        r2_score([1.0, 2.0], [1.0])
    with pytest.raises(ValueError):
        mean_squared_error([], [])


def test_adjusted_r2_penalises_features():
    rng = np.random.default_rng(0)
    y = rng.normal(size=30)
    pred = y + rng.normal(scale=0.1, size=30)
    plain = r2_score(y, pred)
    adjusted_few = adjusted_r2_score(y, pred, num_features=2)
    adjusted_many = adjusted_r2_score(y, pred, num_features=20)
    assert adjusted_few <= plain
    assert adjusted_many < adjusted_few
    assert adjusted_r2_score(y[:3], pred[:3], num_features=5) == float("-inf")
