"""Tests for linear regression, both raw and factorized (from sketches)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SketchError
from repro.ml import LinearRegression, r2_score
from repro.semiring import CovarianceElement


def make_data(n=200, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    coefficients = np.array([2.0, -1.0, 0.5])
    y = 3.0 + x @ coefficients + rng.normal(scale=noise, size=n)
    return x, y, coefficients


def test_ols_recovers_coefficients():
    x, y, coefficients = make_data(noise=0.01)
    model = LinearRegression(ridge=0.0).fit(x, y)
    np.testing.assert_allclose(model.coefficients, coefficients, atol=0.05)
    assert model.intercept == pytest.approx(3.0, abs=0.05)


def test_predict_and_score():
    x, y, _ = make_data()
    model = LinearRegression().fit(x, y)
    assert model.score(x, y) > 0.95
    assert model.predict(x).shape == (len(y),)


def test_ridge_shrinks_coefficients():
    x, y, _ = make_data()
    ols = LinearRegression(ridge=0.0).fit(x, y)
    ridge = LinearRegression(ridge=100.0).fit(x, y)
    assert np.linalg.norm(ridge.coefficients) < np.linalg.norm(ols.coefficients)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        LinearRegression(ridge=-1.0)
    with pytest.raises(ValueError):
        LinearRegression().fit(np.zeros((2, 2)), np.zeros(3))
    with pytest.raises(ValueError):
        LinearRegression().fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        LinearRegression().predict(np.zeros((1, 1)))


def test_model_as_dict_names():
    x, y, _ = make_data()
    model = LinearRegression().fit(x, y, feature_names=["a", "b", "c"])
    weights = model.model_.as_dict()
    assert set(weights) == {"a", "b", "c", "__intercept__"}


def test_fit_from_statistics_matches_raw_fit():
    x, y, _ = make_data()
    features = ["f0", "f1", "f2"]
    element = CovarianceElement.from_matrix(
        (*features, "y"), np.column_stack([x, y])
    )
    raw = LinearRegression(ridge=1e-9).fit(x, y, feature_names=features)
    factorized = LinearRegression(ridge=1e-9).fit_from_statistics(element, features, "y")
    np.testing.assert_allclose(factorized.coefficients, raw.coefficients, atol=1e-6)
    assert factorized.intercept == pytest.approx(raw.intercept, abs=1e-6)


def test_score_from_statistics_matches_raw_score():
    x_train, y_train, _ = make_data(seed=1)
    x_test, y_test, _ = make_data(seed=2)
    features = ["f0", "f1", "f2"]
    model = LinearRegression(ridge=1e-9).fit(x_train, y_train, feature_names=features)
    test_element = CovarianceElement.from_matrix(
        (*features, "y"), np.column_stack([x_test, y_test])
    )
    from_stats = model.score_from_statistics(test_element, features, "y")
    from_raw = r2_score(y_test, model.predict(x_test))
    assert from_stats == pytest.approx(from_raw, abs=1e-8)


def test_statistics_validation_errors():
    x, y, _ = make_data()
    element = CovarianceElement.from_matrix(("a", "y"), np.column_stack([x[:, :1], y]))
    model = LinearRegression()
    with pytest.raises(SketchError):
        model.fit_from_statistics(element, ["missing"], "y")
    with pytest.raises(SketchError):
        model.fit_from_statistics(element, ["y"], "y")
    model.fit_from_statistics(element, ["a"], "y")
    empty = CovarianceElement.zero(("a", "y"))
    with pytest.raises(SketchError):
        model.score_from_statistics(empty, ["a"], "y")
    with pytest.raises(ValueError):
        LinearRegression().score_from_statistics(element, ["a"], "y")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(20, 80),
    noise=st.floats(0.0, 1.0),
)
def test_factorized_and_raw_training_agree_property(seed, n, noise):
    """Training from the sketch must match training from the raw rows."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = 1.0 + x @ np.array([0.5, -2.0]) + rng.normal(scale=noise, size=n)
    element = CovarianceElement.from_matrix(("a", "b", "y"), np.column_stack([x, y]))
    raw = LinearRegression(ridge=1e-8).fit(x, y, feature_names=["a", "b"])
    factorized = LinearRegression(ridge=1e-8).fit_from_statistics(element, ["a", "b"], "y")
    np.testing.assert_allclose(factorized.coefficients, raw.coefficients, atol=1e-5)
