"""Unit and property-based tests for the covariance semi-ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import SemiringError
from repro.semiring import CovarianceElement, CovarianceSemiring


def element_from(matrix, features=("x", "y")):
    return CovarianceElement.from_matrix(features, np.asarray(matrix, dtype=float))


def test_from_matrix_matches_manual_statistics():
    matrix = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    element = element_from(matrix)
    assert element.count == 3
    np.testing.assert_allclose(element.sums, matrix.sum(axis=0))
    np.testing.assert_allclose(element.products, matrix.T @ matrix)


def test_from_row_equivalent_to_single_row_matrix():
    row = CovarianceElement.from_row(("a", "b"), [2.0, 3.0])
    matrix = CovarianceElement.from_matrix(("a", "b"), [[2.0, 3.0]])
    assert row.is_close(matrix)


def test_addition_equals_union_of_rows():
    top = element_from([[1.0, 2.0], [3.0, 4.0]])
    bottom = element_from([[5.0, 6.0]])
    combined = element_from([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    assert (top + bottom).is_close(combined)


def test_addition_with_zero_is_identity():
    element = element_from([[1.0, 2.0]])
    zero = CovarianceElement.zero(("x", "y"))
    assert (element + zero).is_close(element)
    assert (zero + element).is_close(element)


def test_multiplication_matches_cross_join_statistics():
    """a × b must equal the statistics of the cross product of the two row sets."""
    left_rows = np.array([[1.0], [2.0]])
    right_rows = np.array([[10.0], [20.0], [30.0]])
    left = CovarianceElement.from_matrix(("x",), left_rows)
    right = CovarianceElement.from_matrix(("z",), right_rows)
    product = left * right

    cross = np.array([[x[0], z[0]] for x in left_rows for z in right_rows])
    expected = CovarianceElement.from_matrix(("x", "z"), cross)
    assert product.is_close(expected)


def test_multiplication_with_one_is_identity():
    element = element_from([[1.0, 2.0], [3.0, 4.0]])
    one = CovarianceElement.one()
    assert (element * one).is_close(element)
    assert (one * element).is_close(element)


def test_shape_validation():
    with pytest.raises(SemiringError):
        CovarianceElement(("a",), 1.0, np.zeros(2), np.zeros((1, 1)))
    with pytest.raises(SemiringError):
        CovarianceElement(("a",), 1.0, np.zeros(1), np.zeros((2, 2)))
    with pytest.raises(SemiringError):
        CovarianceElement.from_matrix(("a",), np.zeros((3, 2)))


def test_expand_project_round_trip():
    element = element_from([[1.0, 2.0], [3.0, 4.0]])
    expanded = element.expand(("x", "y", "w"))
    assert expanded.features == ("x", "y", "w")
    assert expanded.sum_of("w") == 0.0
    assert expanded.project(("x", "y")).is_close(element)
    with pytest.raises(SemiringError):
        element.expand(("x",))
    with pytest.raises(SemiringError):
        element.project(("unknown",))


def test_rename_features():
    element = element_from([[1.0, 2.0]])
    renamed = element.rename({"y": "y_r"})
    assert renamed.features == ("x", "y_r")
    assert renamed.sum_of("y_r") == 2.0


def test_statistics_accessors():
    matrix = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
    element = element_from(matrix)
    assert element.sum_of("x") == 6.0
    assert element.mean_of("x") == 2.0
    assert element.product_of("x", "y") == pytest.approx(float((matrix[:, 0] * matrix[:, 1]).sum()))
    assert element.variance_of("x") == pytest.approx(np.var(matrix[:, 0]))
    assert element.covariance_of("x", "y") == pytest.approx(
        np.cov(matrix[:, 0], matrix[:, 1], bias=True)[0, 1]
    )
    with pytest.raises(SemiringError):
        element.sum_of("missing")


def test_empty_element_statistics_are_nan():
    zero = CovarianceElement.zero(("x",))
    assert np.isnan(zero.mean_of("x"))
    assert np.isnan(zero.variance_of("x"))


def test_gram_with_bias():
    matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
    element = element_from(matrix)
    gram = element.gram(include_bias=True)
    design = np.column_stack([np.ones(2), matrix])
    np.testing.assert_allclose(gram, design.T @ design)


def test_scale():
    element = element_from([[1.0, 2.0]])
    scaled = element.scale(3.0)
    assert scaled.count == 3.0
    np.testing.assert_allclose(scaled.sums, 3.0 * element.sums)


def test_semiring_wrapper_lift_and_fold():
    semiring = CovarianceSemiring(("x", "y"))
    rows = [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}]
    total = semiring.sum(semiring.lift(row) for row in rows)
    expected = element_from([[1.0, 2.0], [3.0, 4.0]])
    assert total.is_close(expected)
    assert semiring.zero().count == 0
    assert semiring.one().count == 1
    with pytest.raises(SemiringError):
        CovarianceSemiring(())


# -- property-based tests -------------------------------------------------------

row_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.just(2)),
    elements=st.floats(-50, 50, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(a=row_matrices, b=row_matrices)
def test_addition_is_commutative(a, b):
    left = element_from(a) + element_from(b)
    right = element_from(b) + element_from(a)
    assert left.is_close(right, tolerance=1e-6)


@settings(max_examples=50, deadline=None)
@given(a=row_matrices, b=row_matrices, c=row_matrices)
def test_addition_is_associative(a, b, c):
    one = (element_from(a) + element_from(b)) + element_from(c)
    two = element_from(a) + (element_from(b) + element_from(c))
    assert one.is_close(two, tolerance=1e-6)


@settings(max_examples=50, deadline=None)
@given(a=row_matrices, b=row_matrices)
def test_multiplication_is_commutative_up_to_feature_order(a, b):
    left = CovarianceElement.from_matrix(("p", "q"), a)
    right = CovarianceElement.from_matrix(("r", "s"), b)
    forward = left * right
    backward = right * left
    assert forward.is_close(backward.project(forward.features), tolerance=1e-5)


@settings(max_examples=50, deadline=None)
@given(a=row_matrices, b=row_matrices, c=row_matrices)
def test_multiplication_distributes_over_addition(a, b, c):
    """a × (b + c) == a × b + a × c — the property that makes pushdown correct."""
    left = CovarianceElement.from_matrix(("p", "q"), a)
    b_el = CovarianceElement.from_matrix(("r", "s"), b)
    c_el = CovarianceElement.from_matrix(("r", "s"), c)
    lhs = left * (b_el + c_el)
    rhs = (left * b_el) + (left * c_el)
    assert lhs.is_close(rhs, tolerance=1e-4)


@settings(max_examples=50, deadline=None)
@given(a=row_matrices)
def test_addition_matches_vertical_stack(a):
    half = len(a) // 2
    if half == 0:
        return
    top, bottom = a[:half], a[half:]
    combined = element_from(top) + element_from(bottom)
    assert combined.is_close(element_from(a), tolerance=1e-6)
