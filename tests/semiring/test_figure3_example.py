"""The worked example of Figure 3: γ((R1 ∪ R2) ⋈_A R3).

The paper's Figure 3 trains linear regression over the union of R1 and R2
joined with R3 on A, and shows that pushing the covariance aggregation below
the union and join yields exactly the same sufficient statistics as the
naive materialise-then-aggregate plan.
"""

import pytest

from repro.relational import KEY, NUMERIC, Relation, Schema
from repro.semiring import AggregatePlan, Join, Scan, Union
from repro.exceptions import SemiringError


def make_relations():
    schema_bc = Schema.from_spec({"A": KEY, "B": NUMERIC, "C": NUMERIC})
    schema_d = Schema.from_spec({"A": KEY, "D": NUMERIC})
    r1 = Relation("R1", {"A": ["1", "3"], "B": [1.0, 3.0], "C": [2.0, 2.0]}, schema_bc)
    r2 = Relation("R2", {"A": ["2", "3"], "B": [2.0, 3.0], "C": [3.0, 4.0]}, schema_bc)
    r3 = Relation("R3", {"A": ["2", "3"], "D": [2.0, 4.0]}, schema_d)
    return r1, r2, r3


def test_pushdown_equals_naive_plan():
    r1, r2, r3 = make_relations()
    plan = AggregatePlan(
        Join(Union(Scan(r1, ["B", "C"]), Scan(r2, ["B", "C"])), Scan(r3, ["D"]), key="A"),
        key="A",
    )
    naive = plan.naive()
    optimized = plan.optimized()
    assert optimized.is_close(naive)
    # The join keeps keys 2 and 3: rows (2,3,2), (3,2,4), (3,4,4).
    assert naive.count == 3


def test_pushdown_statistics_values():
    r1, r2, r3 = make_relations()
    plan = AggregatePlan(
        Join(Union(Scan(r1, ["B", "C"]), Scan(r2, ["B", "C"])), Scan(r3, ["D"]), key="A"),
        key="A",
    )
    element = plan.optimized()
    # Manual expansion of (R1 ∪ R2) ⋈_A R3 rows: (B,C,D) = (2,3,2), (3,2,4), (3,4,4).
    assert element.sum_of("B") == pytest.approx(8.0)
    assert element.sum_of("C") == pytest.approx(9.0)
    assert element.sum_of("D") == pytest.approx(10.0)
    assert element.product_of("B", "D") == pytest.approx(2 * 2 + 3 * 4 + 3 * 4)
    assert element.product_of("C", "C") == pytest.approx(9 + 4 + 16)


def test_plan_description_mentions_both_strategies():
    r1, r2, r3 = make_relations()
    plan = AggregatePlan(
        Join(Union(Scan(r1, ["B", "C"]), Scan(r2, ["B", "C"])), Scan(r3, ["D"]), key="A"),
        key="A",
    )
    text = plan.describe()
    assert "naive" in text and "optimized" in text
    assert "R1" in text and "R3" in text


def test_union_requires_matching_features():
    r1, r2, r3 = make_relations()
    with pytest.raises(SemiringError):
        Union(Scan(r1, ["B", "C"]), Scan(r3, ["D"])).features()


def test_join_pushdown_requires_matching_key():
    r1, r2, r3 = make_relations()
    node = Join(Scan(r1, ["B", "C"]), Scan(r3, ["D"]), key="A")
    with pytest.raises(SemiringError):
        node.pushdown("Z")
