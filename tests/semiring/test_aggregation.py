"""Tests for semi-ring aggregation and pushdown over relations."""

import numpy as np
import pytest

from repro.exceptions import SemiringError
from repro.relational import KEY, NUMERIC, Relation, Schema, join, union
from repro.semiring import (
    AnnotatedRelation,
    CountSemiring,
    CovarianceElement,
    SumSemiring,
    add_keyed,
    collapse_keyed,
    covariance_aggregate,
    join_aggregate,
    keyed_covariance_aggregate,
    merge_keyed,
    union_aggregate,
)
from repro.semiring.aggregation import aggregate


@pytest.fixture
def left():
    return Relation(
        "left",
        {"k": ["a", "a", "b"], "x": [1.0, 2.0, 3.0]},
        Schema.from_spec({"k": KEY, "x": NUMERIC}),
    )


@pytest.fixture
def right():
    return Relation(
        "right",
        {"k": ["a", "b", "b", "c"], "z": [10.0, 20.0, 30.0, 40.0]},
        Schema.from_spec({"k": KEY, "z": NUMERIC}),
    )


def test_covariance_aggregate_matches_matrix(left):
    element = covariance_aggregate(left, ["x"])
    assert element.count == 3
    assert element.sum_of("x") == 6.0


def test_keyed_aggregate_counts_groups(left):
    groups = keyed_covariance_aggregate(left, "k", ["x"])
    assert set(groups) == {"a", "b"}
    assert groups["a"].count == 2
    assert groups["b"].sum_of("x") == 3.0


def test_keyed_aggregate_unknown_key_raises(left):
    with pytest.raises(SemiringError):
        keyed_covariance_aggregate(left, "missing", ["x"])


def test_join_aggregate_equals_materialized_join(left, right):
    """γ(left ⋈ right) via pushdown must equal aggregation of the real join."""
    pushed = join_aggregate(left, right, "k", ["x"], ["z"])
    materialized = join(left, right, on="k")
    expected = covariance_aggregate(materialized, ["x", "z"])
    assert pushed.is_close(expected)


def test_union_aggregate_equals_materialized_union(left):
    pushed = union_aggregate([left, left], ["x"])
    materialized = union(left, left)
    expected = covariance_aggregate(materialized, ["x"])
    assert pushed.is_close(expected)


def test_merge_keyed_drops_unmatched_keys(left, right):
    merged = merge_keyed(
        keyed_covariance_aggregate(left, "k", ["x"]),
        keyed_covariance_aggregate(right, "k", ["z"]),
    )
    assert set(merged) == {"a", "b"}


def test_add_keyed_keeps_all_keys(left, right):
    added = add_keyed(
        keyed_covariance_aggregate(left, "k", ["x"]),
        keyed_covariance_aggregate(right, "k", ["x"] if "x" in right.schema else ["z"]),
    )
    assert set(added) == {"a", "b", "c"}


def test_collapse_keyed_empty_returns_zero():
    collapsed = collapse_keyed({})
    assert collapsed.count == 0


def test_generic_aggregate_with_count_semiring(left):
    assert aggregate(left, CountSemiring()) == 3


def test_generic_aggregate_with_sum_semiring(left):
    annotation = aggregate(left, SumSemiring("x"))
    assert annotation.count == 3
    assert annotation.total == 6.0


def test_annotated_relation_union_and_join(left, right):
    count = CountSemiring()
    left_ann = AnnotatedRelation.from_relation(left, count, ["k"])
    right_ann = AnnotatedRelation.from_relation(right, count, ["k"])

    unioned = left_ann.union(right_ann)
    assert unioned.annotation(("a",)) == 3  # 2 from left, 1 from right
    assert unioned.annotation(("c",)) == 1

    joined = left_ann.join(right_ann)
    assert joined.annotation(("a",)) == 2  # 2 left rows × 1 right row
    assert joined.annotation(("b",)) == 2  # 1 × 2
    assert joined.annotation(("c",)) == 0  # dropped

    # Total of the joined annotated relation equals the real join size.
    assert joined.total() == len(join(left, right, on="k"))


def test_annotated_relation_rejects_mismatched_groups(left, right):
    count = CountSemiring()
    by_key = AnnotatedRelation.from_relation(left, count, ["k"])
    ungrouped = AnnotatedRelation.from_relation(right, count, [])
    with pytest.raises(SemiringError):
        by_key.union(ungrouped)
    with pytest.raises(SemiringError):
        by_key.join(ungrouped)


def test_annotated_relation_map_annotations(left):
    count = CountSemiring()
    annotated = AnnotatedRelation.from_relation(left, count, ["k"])
    doubled = annotated.map_annotations(lambda c: 2 * c)
    assert doubled.annotation(("a",)) == 4


def test_annotated_relation_unknown_group_column(left):
    with pytest.raises(SemiringError):
        AnnotatedRelation.from_relation(left, CountSemiring(), ["missing"])
