"""Mutation WAL framing/recovery and the SnapshotManager cadence policy.

Covers the crash shapes the durable-state layer promises to survive: a
torn WAL tail (process died mid-append), a crash between cadence
snapshots (tail replay), a crash between the snapshot write and the WAL
truncation (epoch guard skips the overlap), and saving while another
thread churns the corpus.
"""

import threading

import pytest

from repro.core import Mileena, SimulatedClock
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import PersistError
from repro.persist import MutationWAL, apply_records

_SPEC = CorpusSpec(num_datasets=14, requester_rows=100, provider_rows=100, seed=5)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


# -- WAL framing ----------------------------------------------------------------
def test_wal_append_and_replay(tmp_path):
    wal = MutationWAL(tmp_path / "wal.bin")
    wal.append(1, "add", {"name": "a"})
    wal.append(2, "remove", "a")
    wal.close()
    records = MutationWAL(tmp_path / "wal.bin").replay()
    assert [(r.epoch, r.op) for r in records] == [(1, "add"), (2, "remove")]
    assert records[0].payload == {"name": "a"}


def test_wal_torn_tail_is_dropped_and_appendable(tmp_path):
    path = tmp_path / "wal.bin"
    wal = MutationWAL(path)
    for epoch in (1, 2, 3):
        wal.append(epoch, "add", epoch)
    wal.close()
    intact = path.stat().st_size
    path.write_bytes(path.read_bytes()[: intact - 5])  # tear the last record

    reopened = MutationWAL(path)
    assert reopened.torn_bytes > 0
    assert [r.epoch for r in reopened.replay()] == [1, 2]
    # Appending after recovery continues the valid prefix, not the garbage.
    reopened.append(3, "add", "again")
    reopened.close()
    assert [r.epoch for r in MutationWAL(path).replay()] == [1, 2, 3]


def test_wal_corrupt_record_stops_replay(tmp_path):
    path = tmp_path / "wal.bin"
    wal = MutationWAL(path)
    wal.append(1, "add", "x" * 100)
    wal.append(2, "add", "y" * 100)
    wal.close()
    raw = bytearray(path.read_bytes())
    raw[-10] ^= 0xFF  # flip a payload byte of the last record
    path.write_bytes(bytes(raw))
    assert [r.epoch for r in MutationWAL(path).replay()] == [1]


def test_wal_truncate_resets(tmp_path):
    wal = MutationWAL(tmp_path / "wal.bin")
    wal.append(1, "add", "x")
    wal.truncate()
    assert wal.record_count == 0 and wal.last_epoch is None
    wal.append(2, "add", "y")
    wal.close()
    assert [r.epoch for r in MutationWAL(tmp_path / "wal.bin").replay()] == [2]


def test_wal_refuses_foreign_file(tmp_path):
    path = tmp_path / "wal.bin"
    path.write_bytes(b"some other file format entirely")
    with pytest.raises(PersistError, match="magic"):
        MutationWAL(path)


def test_apply_records_refuses_gaps():
    from repro.persist import WalRecord

    platform = Mileena()
    with pytest.raises(PersistError, match="gap"):
        apply_records(platform.corpus, [WalRecord(5, "add", None)])


# -- cadence policy -------------------------------------------------------------
def test_mutation_cadence_snapshots_and_truncates(tmp_path, corpus):
    platform = Mileena.sharded(
        num_shards=2, snapshot_dir=tmp_path, snapshot_every_mutations=3
    )
    manager = platform.snapshots
    for relation in corpus.providers[:8]:
        platform.register_dataset(relation)
    # 8 mutations at cadence 3: snapshots after #3 and #6, WAL holds 2.
    assert manager.snapshot_epoch == 6
    assert manager.wal.record_count == 2
    restored = Mileena.load(tmp_path)
    assert restored.corpus.epoch == platform.corpus.epoch
    assert restored.corpus.names() == platform.corpus.names()


def test_time_cadence_checked_at_mutation(tmp_path, corpus):
    clock = SimulatedClock()
    platform = Mileena(clock=clock)
    platform.attach_snapshots(tmp_path, every_mutations=None, every_seconds=10.0)
    manager = platform.snapshots
    platform.register_dataset(corpus.providers[0])
    assert manager.wal.record_count == 1  # not due yet
    clock.advance(11.0)
    platform.register_dataset(corpus.providers[1])
    assert manager.wal.record_count == 0  # snapshot fired, WAL truncated
    assert manager.snapshot_epoch == 2


def test_add_many_is_one_wal_record(tmp_path, corpus):
    platform = Mileena()
    scratch = Mileena()
    for relation in corpus.providers[:4]:
        scratch.register_dataset(relation)
    registrations = list(scratch.corpus.registrations.values())
    platform.attach_snapshots(tmp_path, every_mutations=100)
    platform.corpus.add_many(registrations)
    manager = platform.snapshots
    assert manager.wal.record_count == 1
    restored = Mileena.load(tmp_path)
    assert restored.corpus.names() == platform.corpus.names()
    assert restored.corpus.epoch == platform.corpus.epoch == 1


def test_crash_between_snapshots_replays_wal_tail(tmp_path, corpus):
    platform = Mileena.sharded(
        num_shards=2, snapshot_dir=tmp_path, snapshot_every_mutations=100
    )
    for relation in corpus.providers[:6]:
        platform.register_dataset(relation)
    platform.corpus.remove(corpus.providers[2].name)
    # No cadence snapshot since attach: everything lives in the WAL tail.
    assert platform.snapshots.wal.record_count == 7
    restored = Mileena.load(tmp_path)  # "crash": load whatever is on disk
    assert restored.corpus.epoch == platform.corpus.epoch
    assert restored.corpus.names() == platform.corpus.names()
    assert corpus.providers[2].name not in restored.corpus


def test_crash_with_torn_wal_tail_restores_prefix(tmp_path, corpus):
    platform = Mileena(snapshots=None)
    platform.attach_snapshots(tmp_path, every_mutations=100)
    for relation in corpus.providers[:5]:
        platform.register_dataset(relation)
    platform.snapshots.detach()
    wal_path = tmp_path / "wal.bin"
    wal_path.write_bytes(wal_path.read_bytes()[:-7])  # tear the last record
    restored = Mileena.load(tmp_path)
    assert restored.corpus.epoch == 4
    assert restored.corpus.names() == [r.name for r in corpus.providers[:4]]


def test_resume_attach_does_not_rewrite_matching_state(tmp_path, corpus):
    platform = Mileena()
    platform.attach_snapshots(tmp_path, every_mutations=3)
    for relation in corpus.providers[:4]:
        platform.register_dataset(relation)
    platform.snapshots.detach()

    restored = Mileena.load(tmp_path)
    snapshot_bytes = (tmp_path / "snapshot.bin").read_bytes()
    restored.attach_snapshots(tmp_path, every_mutations=3)
    # State on disk already restores to the current epoch: no rewrite.
    assert (tmp_path / "snapshot.bin").read_bytes() == snapshot_bytes
    restored.register_dataset(corpus.providers[4])
    again = Mileena.load(tmp_path)
    assert again.corpus.epoch == restored.corpus.epoch
    assert again.corpus.names() == restored.corpus.names()


def test_attach_refuses_foreign_durable_state(tmp_path, corpus):
    """Attaching a mismatched platform must never wipe a directory's
    history — the operator meant ``Mileena.load``, not a fresh platform."""
    durable = Mileena()
    durable.attach_snapshots(tmp_path, every_mutations=2)
    for relation in corpus.providers[:4]:
        durable.register_dataset(relation)
    durable.snapshots.detach()
    on_disk = (tmp_path / "snapshot.bin").read_bytes()

    fresh = Mileena()
    with pytest.raises(PersistError, match="already holds durable state"):
        fresh.attach_snapshots(tmp_path)
    assert fresh.snapshots is None
    assert (tmp_path / "snapshot.bin").read_bytes() == on_disk  # untouched


def test_directory_save_supersedes_stale_wal(tmp_path, corpus):
    """`save` into the managed layout truncates a leftover wal.bin, so a
    later directory load cannot replay another history's records."""
    old = Mileena()
    old.attach_snapshots(tmp_path, every_mutations=100)
    for relation in corpus.providers[:5]:
        old.register_dataset(relation)
    old.snapshots.detach()
    assert MutationWAL(tmp_path / "wal.bin").replay()  # records 1..5 on disk

    other = Mileena()
    for relation in corpus.providers[5:8]:
        other.register_dataset(relation)
    other.save(tmp_path)
    restored = Mileena.load(tmp_path)
    assert restored.corpus.names() == other.corpus.names()
    assert restored.corpus.epoch == other.corpus.epoch == 3


def test_save_delegates_to_attached_manager(tmp_path, corpus):
    platform = Mileena()
    platform.attach_snapshots(tmp_path, every_mutations=100)
    for relation in corpus.providers[:3]:
        platform.register_dataset(relation)
    assert platform.snapshots.wal.record_count == 3
    platform.save(tmp_path)
    # Delegated to the manager: snapshot refreshed AND the WAL truncated
    # atomically under the same lock, not just a file overwrite.
    assert platform.snapshots.wal.record_count == 0
    assert platform.snapshots.snapshot_epoch == 3
    restored = Mileena.load(tmp_path)
    assert restored.corpus.epoch == 3


def test_save_under_churn_is_consistent(tmp_path, corpus):
    platform = Mileena()
    for relation in corpus.providers[:6]:
        platform.register_dataset(relation)
    stop = threading.Event()

    def churn():
        index = 0
        while not stop.is_set():
            victim = corpus.providers[index % 6]
            platform.corpus.remove(victim.name)
            platform.register_dataset(victim)
            index += 1

    thread = threading.Thread(target=churn, daemon=True)
    thread.start()
    try:
        for attempt in range(5):
            path = platform.save(tmp_path / f"snapshot_{attempt}.bin")
            loaded = Mileena.load(path)
            # Every save is one frozen corpus state: the three structures
            # agree with each other and with the recorded epoch.
            assert len(loaded.corpus) == len(loaded.corpus.discovery)
            assert len(loaded.corpus) == len(loaded.corpus.sketches)
            # A victim may be mid remove/re-register at capture time, so
            # the set is 5 or 6 names — but never a torn structure.
            names = set(loaded.corpus.names())
            assert names <= {r.name for r in corpus.providers[:6]}
            assert len(names) >= 5
            assert loaded.corpus.discovery.join_candidates(corpus.train) is not None
    finally:
        stop.set()
        thread.join(timeout=10.0)
