"""Snapshot round-trips: a loaded platform is bit-identical to the saved one.

The contract the persistence layer must honour is the same one the
process backend's replicas live by: DP-randomised sketches are serialised
verbatim (never rebuilt), discovery profiles replay in registration order
into identical packed structures, and join/union/search results — down to
the final model's coefficient bytes — match the never-persisted original.
"""

import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import PersistError
from repro.persist import read_snapshot, write_snapshot

_SPEC = CorpusSpec(num_datasets=12, requester_rows=120, provider_rows=120, seed=3)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="module")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=3,
    )


def populate(platform, corpus, with_churn=True):
    """Registrations incl. DP-privatised sketches and (optionally) churn."""
    for index, relation in enumerate(corpus.providers):
        epsilon = 2.0 if index % 3 == 0 else None
        platform.register_dataset(relation, epsilon=epsilon)
    if with_churn:
        # Unregister + re-register: exercises free-list row recycling in
        # the engine and re-registration order in the snapshot.
        recycled = corpus.providers[1]
        platform.corpus.remove(recycled.name)
        platform.register_dataset(recycled)
    return platform


def result_identity(result):
    report = result.final_report
    return (
        tuple(
            (c.kind, c.dataset, c.join_key, c.column_mapping)
            for c in result.plan.candidates
        ),
        result.proxy_test_r2,
        result.candidates_considered,
        report.train_r2,
        report.test_r2,
        tuple(report.feature_names),
        report.model.model_.intercept,
        report.model.model_.coefficients.tobytes(),
    )


def assert_platforms_identical(live, loaded, corpus, request_for):
    assert loaded.corpus.epoch == live.corpus.epoch
    assert loaded.corpus.names() == live.corpus.names()
    # DP sketches must ride through the snapshot byte for byte: rebuilding
    # one would re-randomise it.
    for name in live.corpus.names():
        original = live.corpus.sketches.get(name)
        restored = loaded.corpus.sketches.get(name)
        assert restored.total.sums.tobytes() == original.total.sums.tobytes()
        assert restored.total.products.tobytes() == original.total.products.tobytes()
        assert restored.total.count == original.total.count
        assert restored.epsilon == original.epsilon
        assert restored.private == original.private
    assert (
        loaded.corpus.discovery.join_candidates(corpus.train)
        == live.corpus.discovery.join_candidates(corpus.train)
    )
    assert (
        loaded.corpus.discovery.union_candidates(corpus.train)
        == live.corpus.discovery.union_candidates(corpus.train)
    )
    assert result_identity(loaded.search(request_for)) == result_identity(
        live.search(request_for)
    )


def test_flat_roundtrip_bit_identity(tmp_path, corpus, request_for):
    live = populate(Mileena(), corpus)
    path = live.save(tmp_path / "snapshot.bin")
    loaded = Mileena.load(path)
    assert type(loaded.corpus.discovery).__name__ == "DiscoveryIndex"
    assert_platforms_identical(live, loaded, corpus, request_for)


def test_sharded_roundtrip_bit_identity(tmp_path, corpus, request_for):
    live = populate(
        Mileena.sharded(
            num_shards=3,
            use_lsh=True,
            target_recall=0.9,
            multi_probe=True,
            discovery_cache_capacity=8,
            backend="thread",
        ),
        corpus,
    )
    path = live.save(tmp_path / "snapshot.bin")
    loaded = Mileena.load(path)
    discovery = loaded.corpus.discovery
    assert type(discovery).__name__ == "ShardedDiscoveryIndex"
    assert discovery.num_shards == 3
    assert discovery.lsh_bands == live.corpus.discovery.lsh_bands
    assert discovery.multi_probe and discovery.target_recall == 0.9
    assert loaded.serving_backend == "thread"
    assert_platforms_identical(live, loaded, corpus, request_for)


def test_save_accepts_directory(tmp_path, corpus):
    live = populate(Mileena(), corpus, with_churn=False)
    path = live.save(tmp_path)
    assert path == tmp_path / "snapshot.bin"
    assert Mileena.load(path).corpus.epoch == live.corpus.epoch


def test_save_leaves_no_temp_files(tmp_path, corpus):
    live = populate(Mileena(), corpus, with_churn=False)
    live.save(tmp_path / "snapshot.bin")
    live.save(tmp_path / "snapshot.bin")  # overwrite goes through rename too
    assert sorted(p.name for p in tmp_path.iterdir()) == ["snapshot.bin"]


def test_checksum_mismatch_refused(tmp_path):
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, {"epoch": 1})
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(PersistError, match="checksum"):
        read_snapshot(path)


def test_bad_magic_refused(tmp_path):
    path = tmp_path / "snapshot.bin"
    path.write_bytes(b"not a snapshot at all, definitely long enough header")
    with pytest.raises(PersistError, match="magic"):
        read_snapshot(path)


def test_truncated_payload_refused(tmp_path):
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, {"epoch": 1})
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 4])
    with pytest.raises(PersistError, match="truncated"):
        read_snapshot(path)


def test_unknown_format_version_refused(tmp_path):
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, {"epoch": 1})
    raw = bytearray(path.read_bytes())
    raw[8] = 0xFE  # format version field (little-endian u32 after the magic)
    path.write_bytes(bytes(raw))
    with pytest.raises(PersistError, match="version"):
        read_snapshot(path)
