"""Tests for DP primitives: budgets, Laplace/Gaussian mechanisms."""

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.privacy import (
    GaussianMechanism,
    LaplaceMechanism,
    PrivacyBudget,
    analytic_gaussian_sigma,
    classic_gaussian_sigma,
    gaussian_noise,
    laplace_noise,
    laplace_scale,
)


def test_budget_validation():
    PrivacyBudget(1.0, 1e-6)
    PrivacyBudget(0.0, 0.0)
    with pytest.raises(PrivacyError):
        PrivacyBudget(-1.0)
    with pytest.raises(PrivacyError):
        PrivacyBudget(1.0, 1.5)


def test_budget_split_and_divide():
    budget = PrivacyBudget(1.0, 1e-5)
    parts = budget.split([0.5, 0.25, 0.25])
    assert sum(part.epsilon for part in parts) == pytest.approx(1.0)
    assert parts[0].epsilon == pytest.approx(0.5)
    per_request = budget.divide(10)
    assert per_request.epsilon == pytest.approx(0.1)
    with pytest.raises(PrivacyError):
        budget.split([0.9, 0.5])
    with pytest.raises(PrivacyError):
        budget.split([0.5, -0.1])
    with pytest.raises(PrivacyError):
        budget.divide(0)


def test_laplace_scale_and_noise():
    assert laplace_scale(2.0, 0.5) == 4.0
    with pytest.raises(PrivacyError):
        laplace_scale(-1.0, 1.0)
    with pytest.raises(PrivacyError):
        laplace_scale(1.0, 0.0)
    rng = np.random.default_rng(0)
    noise = laplace_noise(10_000, sensitivity=1.0, epsilon=1.0, rng=rng)
    # Laplace(b=1) has std sqrt(2).
    assert np.std(noise) == pytest.approx(np.sqrt(2.0), rel=0.05)


def test_classic_and_analytic_sigma_ordering():
    classic = classic_gaussian_sigma(1.0, 1.0, 1e-6)
    analytic = analytic_gaussian_sigma(1.0, 1.0, 1e-6)
    assert analytic <= classic
    assert analytic > 0


def test_analytic_sigma_monotonic_in_epsilon():
    tight = analytic_gaussian_sigma(1.0, 0.1, 1e-6)
    loose = analytic_gaussian_sigma(1.0, 2.0, 1e-6)
    assert tight > loose


def test_analytic_sigma_scales_with_sensitivity():
    small = analytic_gaussian_sigma(1.0, 1.0, 1e-6)
    large = analytic_gaussian_sigma(5.0, 1.0, 1e-6)
    assert large == pytest.approx(5.0 * small, rel=1e-6)
    assert analytic_gaussian_sigma(0.0, 1.0, 1e-6) == 0.0


def test_sigma_validation():
    with pytest.raises(PrivacyError):
        analytic_gaussian_sigma(1.0, 0.0, 1e-6)
    with pytest.raises(PrivacyError):
        analytic_gaussian_sigma(1.0, 1.0, 0.0)
    with pytest.raises(PrivacyError):
        classic_gaussian_sigma(-1.0, 1.0, 1e-6)


def test_gaussian_noise_matches_sigma():
    rng = np.random.default_rng(1)
    budget = PrivacyBudget(1.0, 1e-6)
    noise = gaussian_noise(20_000, 1.0, budget, rng=rng)
    expected_sigma = analytic_gaussian_sigma(1.0, 1.0, 1e-6)
    assert np.std(noise) == pytest.approx(expected_sigma, rel=0.05)
    with pytest.raises(PrivacyError):
        gaussian_noise(10, 1.0, PrivacyBudget(0.0, 1e-6))


def test_gaussian_mechanism_randomize_scalar_and_array():
    mechanism = GaussianMechanism(1.0, PrivacyBudget(5.0, 1e-6), rng=np.random.default_rng(0))
    scalar = mechanism.randomize(10.0)
    assert isinstance(scalar, float)
    array = mechanism.randomize(np.zeros(5))
    assert array.shape == (5,)
    with pytest.raises(PrivacyError):
        GaussianMechanism(1.0, PrivacyBudget(0.0, 1e-6))


def test_laplace_mechanism_randomize():
    mechanism = LaplaceMechanism(1.0, 2.0, rng=np.random.default_rng(0))
    assert isinstance(mechanism.randomize(1.0), float)
    assert mechanism.randomize(np.zeros(3)).shape == (3,)


def test_noise_decreases_with_larger_epsilon():
    rng = np.random.default_rng(2)
    low_eps = gaussian_noise(5_000, 1.0, PrivacyBudget(0.1, 1e-6), rng=rng)
    high_eps = gaussian_noise(5_000, 1.0, PrivacyBudget(10.0, 1e-6), rng=rng)
    assert np.std(high_eps) < np.std(low_eps)
