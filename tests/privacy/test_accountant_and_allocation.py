"""Tests for the privacy accountant and budget allocation strategies."""

import pytest

from repro.exceptions import PrivacyError
from repro.privacy import (
    COUNT_HEAVY,
    PROPORTIONAL,
    UNIFORM,
    PrivacyAccountant,
    PrivacyBudget,
    SketchSensitivity,
    allocate_budget,
)


def test_accountant_register_and_spend():
    accountant = PrivacyAccountant()
    accountant.register("taxi", PrivacyBudget(1.0, 1e-5))
    assert accountant.remaining("taxi").epsilon == 1.0
    accountant.spend("taxi", PrivacyBudget(0.4, 1e-6))
    assert accountant.remaining("taxi").epsilon == pytest.approx(0.6)
    assert accountant.spent("taxi").epsilon == pytest.approx(0.4)
    assert accountant.releases("taxi") == 1


def test_accountant_rejects_overspend():
    accountant = PrivacyAccountant()
    accountant.register("taxi", PrivacyBudget(1.0, 1e-5))
    accountant.spend("taxi", PrivacyBudget(0.9, 1e-6))
    assert not accountant.can_spend("taxi", PrivacyBudget(0.5, 1e-6))
    with pytest.raises(PrivacyError):
        accountant.spend("taxi", PrivacyBudget(0.5, 1e-6))


def test_accountant_unknown_and_duplicate_dataset():
    accountant = PrivacyAccountant()
    with pytest.raises(PrivacyError):
        accountant.remaining("nope")
    accountant.register("a", PrivacyBudget(1.0))
    with pytest.raises(PrivacyError):
        accountant.register("a", PrivacyBudget(1.0))


def test_sensitivity_for_clipped_features():
    sensitivity = SketchSensitivity.for_clipped_features(4, 0.5)
    assert sensitivity.count == 1.0
    assert sensitivity.sums == pytest.approx(2 * 0.5)
    assert sensitivity.products == pytest.approx(4 * 0.25)
    with pytest.raises(PrivacyError):
        SketchSensitivity.for_clipped_features(0, 1.0)
    with pytest.raises(PrivacyError):
        SketchSensitivity.for_clipped_features(3, 0.0)


@pytest.mark.parametrize("strategy", [UNIFORM, PROPORTIONAL, COUNT_HEAVY])
def test_allocation_preserves_total_budget(strategy):
    budget = PrivacyBudget(1.0, 1e-5)
    sensitivity = SketchSensitivity.for_clipped_features(5, 1.0)
    allocation = allocate_budget(budget, sensitivity, strategy)
    total_epsilon = (
        allocation.count.epsilon + allocation.sums.epsilon + allocation.products.epsilon
    )
    assert total_epsilon == pytest.approx(1.0)


def test_allocation_strategies_differ():
    budget = PrivacyBudget(1.0, 1e-5)
    sensitivity = SketchSensitivity.for_clipped_features(10, 1.0)
    uniform = allocate_budget(budget, sensitivity, UNIFORM)
    proportional = allocate_budget(budget, sensitivity, PROPORTIONAL)
    count_heavy = allocate_budget(budget, sensitivity, COUNT_HEAVY)
    assert uniform.count.epsilon == pytest.approx(1.0 / 3.0)
    # Proportional gives more budget to the high-sensitivity products component.
    assert proportional.products.epsilon > proportional.count.epsilon
    # Count-heavy favours the count/sums.
    assert count_heavy.count.epsilon > count_heavy.products.epsilon


def test_allocation_unknown_strategy():
    with pytest.raises(PrivacyError):
        allocate_budget(PrivacyBudget(1.0, 1e-5), SketchSensitivity(1, 1, 1), "magic")
