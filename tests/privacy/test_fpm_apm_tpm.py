"""Tests for the factorized, aggregate, and tuple privacy mechanisms."""

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.ml import LinearRegression
from repro.privacy import (
    AggregatePrivacyMechanism,
    FactorizedPrivacyMechanism,
    PrivacyBudget,
    TuplePrivacyMechanism,
)
from repro.semiring import CovarianceElement


def make_element(n=500, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = 0.3 + 0.5 * x[:, 0] - 0.2 * x[:, 1] + rng.normal(scale=0.05, size=n)
    y = np.clip(y, -1, 1)
    matrix = np.column_stack([x, y])
    return CovarianceElement.from_matrix(("a", "b", "y"), matrix), matrix


def test_fpm_privatized_element_is_usable_for_regression():
    element, _ = make_element(n=5000)
    fpm = FactorizedPrivacyMechanism(clip_bound=1.0, rng=np.random.default_rng(0))
    noisy = fpm.privatize_element(element, PrivacyBudget(2.0, 1e-5))
    model = LinearRegression(ridge=1e-3).fit_from_statistics(noisy, ["a", "b"], "y")
    exact = LinearRegression(ridge=1e-3).fit_from_statistics(element, ["a", "b"], "y")
    np.testing.assert_allclose(model.coefficients, exact.coefficients, atol=0.3)


def test_fpm_noise_decreases_with_epsilon():
    fpm = FactorizedPrivacyMechanism(clip_bound=1.0)
    low = fpm.noise_scale(3, PrivacyBudget(0.1, 1e-6))
    high = fpm.noise_scale(3, PrivacyBudget(5.0, 1e-6))
    assert high["products"] < low["products"]
    assert high["count"] < low["count"]


def test_fpm_respects_budget_via_accountant():
    element, _ = make_element(n=100)
    fpm = FactorizedPrivacyMechanism(rng=np.random.default_rng(0))
    fpm.privatize_element(element, PrivacyBudget(1.0, 1e-6), dataset="d1")
    # The full budget was spent on the first release; a second one must fail.
    with pytest.raises(PrivacyError):
        fpm.privatize_element(element, PrivacyBudget(1.0, 1e-6), dataset="d1")


def test_fpm_zero_epsilon_rejected():
    element, _ = make_element(n=10)
    fpm = FactorizedPrivacyMechanism()
    with pytest.raises(PrivacyError):
        fpm.privatize_element(element, PrivacyBudget(0.0, 1e-6))
    with pytest.raises(PrivacyError):
        FactorizedPrivacyMechanism(clip_bound=0.0)


def test_fpm_keyed_sketch_privatization():
    rng = np.random.default_rng(0)
    groups = {
        key: CovarianceElement.from_matrix(("a", "y"), rng.uniform(-1, 1, size=(50, 2)))
        for key in ["k1", "k2", "k3"]
    }
    fpm = FactorizedPrivacyMechanism(rng=rng)
    noisy = fpm.privatize_keyed(groups, PrivacyBudget(1.0, 1e-6), dataset="keyed")
    assert set(noisy) == {"k1", "k2", "k3"}
    for key in groups:
        assert noisy[key].count > 0
        assert not np.allclose(noisy[key].products, groups[key].products)
    assert fpm.privatize_keyed({}, PrivacyBudget(1.0, 1e-6)) == {}


def test_fpm_count_never_nonpositive():
    tiny = CovarianceElement.from_matrix(("a",), np.array([[0.1]]))
    fpm = FactorizedPrivacyMechanism(rng=np.random.default_rng(0))
    for _ in range(20):
        noisy = fpm.privatize_element(tiny, PrivacyBudget(0.01, 1e-6))
        assert noisy.count > 0


def test_fpm_products_noise_is_symmetric():
    element, _ = make_element(n=200)
    fpm = FactorizedPrivacyMechanism(rng=np.random.default_rng(1))
    noisy = fpm.privatize_element(element, PrivacyBudget(0.5, 1e-6))
    np.testing.assert_allclose(noisy.products, noisy.products.T)


def test_apm_per_release_budget_shrinks_with_expected_releases():
    few = AggregatePrivacyMechanism(expected_releases=2)
    many = AggregatePrivacyMechanism(expected_releases=200)
    budget = PrivacyBudget(1.0, 1e-5)
    assert few.per_release_budget(budget).epsilon > many.per_release_budget(budget).epsilon


def test_apm_noise_grows_with_expected_releases():
    element, _ = make_element(n=2000)
    budget = PrivacyBudget(1.0, 1e-5)
    rng_few, rng_many = np.random.default_rng(0), np.random.default_rng(0)
    few = AggregatePrivacyMechanism(expected_releases=1, rng=rng_few)
    many = AggregatePrivacyMechanism(expected_releases=100, rng=rng_many)
    error_few = np.abs(
        few.privatize_element(element, budget).products - element.products
    ).mean()
    error_many = np.abs(
        many.privatize_element(element, budget).products - element.products
    ).mean()
    assert error_many > error_few


def test_apm_release_tracking_and_exhaustion():
    element, _ = make_element(n=50)
    apm = AggregatePrivacyMechanism(expected_releases=2, rng=np.random.default_rng(0))
    budget = PrivacyBudget(1.0, 1e-5)
    apm.privatize_element(element, budget, dataset="d")
    apm.privatize_element(element, budget, dataset="d")
    assert apm.releases_used("d") == 2
    with pytest.raises(PrivacyError):
        apm.privatize_element(element, budget, dataset="d")


def test_apm_validation():
    with pytest.raises(PrivacyError):
        AggregatePrivacyMechanism(expected_releases=0)
    with pytest.raises(PrivacyError):
        AggregatePrivacyMechanism(clip_bound=-1.0)


def test_tpm_perturbs_every_row():
    _, matrix = make_element(n=100)
    tpm = TuplePrivacyMechanism(rng=np.random.default_rng(0))
    noisy = tpm.perturb_matrix(matrix, PrivacyBudget(1.0, 1e-5))
    assert noisy.shape == matrix.shape
    assert not np.allclose(noisy, matrix)


def test_tpm_noise_is_much_larger_than_fpm_for_same_budget():
    element, matrix = make_element(n=2000)
    budget = PrivacyBudget(1.0, 1e-5)
    fpm = FactorizedPrivacyMechanism(rng=np.random.default_rng(0))
    tpm = TuplePrivacyMechanism(rng=np.random.default_rng(0))
    fpm_element = fpm.privatize_element(element, budget)
    tpm_element = tpm.privatize_element(["a", "b", "y"], matrix, budget)
    fpm_error = np.abs(fpm_element.products - element.products).mean()
    tpm_error = np.abs(tpm_element.products - element.products).mean()
    assert tpm_error > fpm_error


def test_tpm_validation():
    with pytest.raises(PrivacyError):
        TuplePrivacyMechanism(clip_bound=0.0)
    tpm = TuplePrivacyMechanism()
    with pytest.raises(PrivacyError):
        tpm.perturb_matrix(np.zeros((2, 2)), PrivacyBudget(0.0, 1e-6))
