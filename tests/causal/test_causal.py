"""Tests for the causal-inference module."""

import numpy as np
import pytest

from repro.causal import (
    BACKWARD,
    FORWARD,
    CausalDAG,
    PrivateAteExperiment,
    backdoor_ate,
    chi_square_independence,
    contingency_table,
    fisher_z_test,
    histogram,
    mediator_ate,
    naive_ate,
    noisy_histogram,
    pairwise_direction,
    partial_correlation,
    pc_skeleton,
    relative_error,
    student_study_dag,
)
from repro.datasets import CausalStudySpec, generate_causal_study
from repro.exceptions import CausalError, PrivacyError
from repro.relational import Relation
from repro.semiring import CovarianceElement


# -- DAG ---------------------------------------------------------------------------

def test_dag_structure_queries():
    dag = student_study_dag()
    assert dag.parents("Y") == ["A", "D"]
    assert dag.children("T") == ["P"]
    assert "D" in dag.ancestors("Y")
    assert "Y" in dag.descendants("T")
    assert dag.has_edge("P", "A")
    assert "D" in dag.describe()


def test_dag_rejects_cycles_and_unknown_nodes():
    with pytest.raises(CausalError):
        CausalDAG(edges=[("a", "b"), ("b", "a")])
    dag = student_study_dag()
    with pytest.raises(CausalError):
        dag.parents("missing")


def test_d_separation():
    dag = student_study_dag()
    # A and T are connected through P; conditioning on P blocks the path.
    assert not dag.d_separated("T", "A")
    assert dag.d_separated("T", "A", given=["P"])


def test_backdoor_set_with_observed_confounder():
    dag = CausalDAG(edges=[("Z", "T"), ("Z", "Y"), ("T", "Y")])
    assert dag.backdoor_adjustment_set("T", "Y") == {"Z"}


def test_backdoor_set_unavailable_with_latent_confounder():
    dag = student_study_dag()
    assert dag.backdoor_adjustment_set("T", "Y") is None


# -- independence tests -----------------------------------------------------------------

def test_contingency_table_and_chi_square_dependence():
    rng = np.random.default_rng(0)
    x = (rng.random(2000) < 0.5).astype(float)
    y = np.where(rng.random(2000) < 0.8, x, 1 - x)  # strongly dependent
    z = (rng.random(2000) < 0.5).astype(float)      # independent of x
    relation = Relation("r", {"x": x, "y": y, "z": z})
    counts = contingency_table(relation, ["x", "y"])
    assert sum(counts.values()) == 2000
    dependent = chi_square_independence(relation, "x", "y")
    independent = chi_square_independence(relation, "x", "z")
    assert not dependent.independent
    assert independent.independent


def test_chi_square_conditional():
    rng = np.random.default_rng(1)
    z = (rng.random(4000) < 0.5).astype(float)
    x = np.where(rng.random(4000) < 0.85, z, 1 - z)
    y = np.where(rng.random(4000) < 0.85, z, 1 - z)
    relation = Relation("r", {"x": x, "y": y, "z": z})
    marginal = chi_square_independence(relation, "x", "y")
    conditional = chi_square_independence(relation, "x", "y", given=["z"])
    assert not marginal.independent          # dependent through the common cause
    assert conditional.independent           # independent once z is conditioned on
    with pytest.raises(CausalError):
        contingency_table(relation, ["missing"])


def test_partial_correlation_and_fisher_z():
    rng = np.random.default_rng(2)
    n = 3000
    z = rng.normal(size=n)
    x = z + rng.normal(scale=0.5, size=n)
    y = z + rng.normal(scale=0.5, size=n)
    element = CovarianceElement.from_matrix(("x", "y", "z"), np.column_stack([x, y, z]))
    marginal_corr = partial_correlation(element, "x", "y")
    partial = partial_correlation(element, "x", "y", ["z"])
    assert marginal_corr > 0.5
    assert abs(partial) < 0.1
    assert not fisher_z_test(element, "x", "y").independent
    assert fisher_z_test(element, "x", "y", ["z"]).independent
    with pytest.raises(CausalError):
        partial_correlation(element, "x", "missing")


# -- discovery -------------------------------------------------------------------------------

def test_pairwise_direction_recovers_lingam_orientation():
    rng = np.random.default_rng(3)
    x = rng.uniform(0, 10, size=4000)  # non-Gaussian cause
    y = 2.0 * x + rng.uniform(0, 10, size=4000)
    forward = pairwise_direction(x, y)
    backward = pairwise_direction(y, x)
    assert forward.direction == FORWARD
    assert backward.direction == BACKWARD
    with pytest.raises(CausalError):
        pairwise_direction(x[:10], y[:20])


def test_pc_skeleton_removes_conditionally_independent_edge():
    rng = np.random.default_rng(4)
    n = 4000
    x = rng.normal(size=n)
    y = x + rng.normal(scale=0.3, size=n)
    z = y + rng.normal(scale=0.3, size=n)  # chain x -> y -> z
    element = CovarianceElement.from_matrix(("x", "y", "z"), np.column_stack([x, y, z]))
    skeleton = pc_skeleton(element, ["x", "y", "z"], alpha=0.01)
    assert frozenset({"x", "y"}) in skeleton
    assert frozenset({"y", "z"}) in skeleton
    assert frozenset({"x", "z"}) not in skeleton
    with pytest.raises(CausalError):
        pc_skeleton(element, ["x", "nope"])


# -- ATE estimators -----------------------------------------------------------------------------

@pytest.fixture(scope="module")
def study():
    return generate_causal_study(CausalStudySpec(num_students=40_000, seed=0))


def test_naive_ate_is_biased_upwards(study):
    naive = naive_ate(histogram(study.r1, ["T", "Y"]))
    assert naive > study.ate_true


def test_mediator_formula_is_nearly_unbiased(study):
    joined = study.r1.join(study.r3, on="student_id")
    estimate = mediator_ate(
        histogram(joined, ["T", "A"]),
        histogram(study.r3, ["P", "A", "Y"]),
        histogram(study.r3, ["P"]),
    )
    assert relative_error(estimate, study.ate_true) < 0.05


def test_backdoor_on_gender_does_not_remove_confounding(study):
    joined = study.r1.join(study.r2, on="student_id")
    counts = {}
    for (t, y, g), value in histogram(joined, ["T", "Y", "G"]).items():
        counts[(t, y, g)] = value
    estimate = backdoor_ate(counts)
    # Adjusting for G cannot block the latent confounder: the bias remains.
    assert relative_error(estimate, study.ate_true) > 0.03


def test_relative_error_requires_nonzero_truth():
    with pytest.raises(CausalError):
        relative_error(1.0, 0.0)


def test_noisy_histogram_validation():
    with pytest.raises(PrivacyError):
        noisy_histogram({("1",): 10.0}, epsilon=0.0)
    noisy = noisy_histogram({("1",): 10.0, ("0",): 5.0}, epsilon=100.0, rng=np.random.default_rng(0))
    assert noisy[("1",)] == pytest.approx(10.0, abs=0.5)


def test_private_ate_experiment_reproduces_paper_ordering(study):
    experiment = PrivateAteExperiment(epsilon=1.0, rng=np.random.default_rng(0))
    result = experiment.run(study)
    # The marginal-based estimator is far more accurate than the backdoor-
    # over-privatised-join estimator (paper: 0.21% vs 10.25%).
    assert result.mediator_relative_error < result.backdoor_relative_error
    assert result.mediator_relative_error < 0.05
    assert result.backdoor_relative_error > 0.03
    assert result.ate_true == pytest.approx(study.ate_true)
