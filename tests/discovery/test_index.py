"""Tests for the Aurum-style discovery index."""

import pytest

from repro.discovery import JOIN, UNION, DiscoveryIndex, profile_relation
from repro.exceptions import DiscoveryError
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema


@pytest.fixture
def query():
    return Relation(
        "query",
        {
            "zipcode": [f"1000{i % 5}" for i in range(20)],
            "price": [float(i) for i in range(20)],
        },
        Schema.from_spec({"zipcode": KEY, "price": NUMERIC}),
    )


@pytest.fixture
def index(query):
    index = DiscoveryIndex(join_threshold=0.3, union_threshold=0.3)
    # Joinable provider: shares the zipcode domain.
    joinable = Relation(
        "demographics",
        {
            "zipcode": [f"1000{i % 5}" for i in range(30)],
            "income": [float(i) for i in range(30)],
        },
        Schema.from_spec({"zipcode": KEY, "income": NUMERIC}),
    )
    # Unionable provider: same schema vocabulary as the query.
    unionable = Relation(
        "query_extra",
        {
            "zipcode": [f"2000{i % 5}" for i in range(15)],
            "price": [float(i) for i in range(15)],
        },
        Schema.from_spec({"zipcode": KEY, "price": NUMERIC}),
    )
    # Distractor: unrelated keys and columns.
    distractor = Relation(
        "weather",
        {
            "station": [f"st{i}" for i in range(25)],
            "wind": [float(i) for i in range(25)],
        },
        Schema.from_spec({"station": CATEGORICAL, "wind": NUMERIC}),
    )
    for relation in (joinable, unionable, distractor):
        index.register(relation)
    return index


def test_register_and_contains(index):
    assert "demographics" in index
    assert len(index) == 3
    index.unregister("weather")
    assert "weather" not in index
    assert len(index) == 2


def test_join_candidates_find_shared_key(index, query):
    candidates = index.join_candidates(query)
    datasets = [candidate.dataset for candidate in candidates]
    assert "demographics" in datasets
    top = candidates[0]
    assert top.query_column == "zipcode"
    assert top.candidate_column == "zipcode"
    assert top.similarity > 0.5


def test_join_candidates_exclude_distractor(index, query):
    candidates = index.join_candidates(query)
    assert all(candidate.dataset != "weather" for candidate in candidates)


def test_union_candidates_find_same_schema(index, query):
    candidates = index.union_candidates(query)
    datasets = [candidate.dataset for candidate in candidates]
    assert "query_extra" in datasets
    mapping = dict(candidates[0].column_mapping)
    assert mapping.get("price") == "price"


def test_discover_dispatch(index, query):
    joins = index.discover(query, JOIN, top_k=1)
    unions = index.discover(query, UNION, top_k=1)
    assert len(joins) <= 1
    assert len(unions) <= 1
    with pytest.raises(DiscoveryError):
        index.discover(query, "cross_join")


def test_register_profile_directly(query):
    index = DiscoveryIndex()
    profile = profile_relation(query)
    index.register_profile(profile)
    assert "query" in index


def test_query_is_never_its_own_candidate(index, query):
    index.register(query)
    assert all(c.dataset != "query" for c in index.join_candidates(query))
    assert all(c.dataset != "query" for c in index.union_candidates(query))


def test_top_k_limits_results(index, query):
    assert len(index.join_candidates(query, top_k=0)) == 0


def test_unregister_removes_idf_documents(index):
    """Regression: unregistering a dataset must not leak its TF-IDF documents.

    Before the fix, unregister only dropped the profile, leaving the
    dataset's documents counted in the IDF model and skewing every later
    union search.
    """
    baseline_docs = index.idf_model.document_count
    extra = Relation(
        "transient",
        {
            "station": [f"xx{i}" for i in range(10)],
            "humidity": [float(i) for i in range(10)],
        },
        Schema.from_spec({"station": CATEGORICAL, "humidity": NUMERIC}),
    )
    index.register(extra)
    assert index.idf_model.document_count > baseline_docs
    index.unregister("transient")
    assert index.idf_model.document_count == baseline_docs
    assert "humidity" not in index.idf_model.document_frequency


def test_unregister_restores_idf_weights(query):
    """After register+unregister the IDF weights match a never-registered index."""
    reference = DiscoveryIndex()
    reference.register(query)
    subject = DiscoveryIndex()
    subject.register(query)
    ghost = Relation(
        "ghost",
        {
            "zipcode": [f"3000{i % 5}" for i in range(10)],
            "price": [float(i) for i in range(10)],
        },
        Schema.from_spec({"zipcode": KEY, "price": NUMERIC}),
    )
    subject.register(ghost)
    subject.unregister("ghost")
    assert subject.idf_model.document_count == reference.idf_model.document_count
    assert subject.idf_model.idf() == reference.idf_model.idf()


def test_unregister_unknown_dataset_is_noop(index):
    before = index.idf_model.document_count
    index.unregister("never_registered")
    assert index.idf_model.document_count == before


def test_reregistration_does_not_double_count_idf_documents(query):
    """Regression: replacing a profile must swap its IDF documents, not stack them."""
    reference = DiscoveryIndex()
    reference.register(query)
    subject = DiscoveryIndex()
    for _ in range(3):
        subject.register(query)
    assert subject.idf_model.document_count == reference.idf_model.document_count
    assert subject.idf_model.idf() == reference.idf_model.idf()
    subject.unregister(query.name)
    assert subject.idf_model.document_count == 0
