"""Parity tests: the vectorized discovery engine must match the scalar oracle.

The vectorized exact path is required to be *result identical* to the
scalar reference — same candidates, same ordering, similarities equal to
within 1e-12 (in practice bit-equal, which is what we assert).  The LSH
path is approximate by construction, so its parity is asserted on corpora
whose true matches are high-similarity (where the banding miss probability
is astronomically small) and its subset property on adversarial ones.
"""

import random

import numpy as np
import pytest

from repro.discovery import (
    DiscoveryIndex,
    PackedSignatureMatrix,
    TokenIndex,
    VersionedCache,
    profile_relation,
)
from repro.exceptions import DiscoveryError
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema

SPEC = {"key": KEY, "tag": CATEGORICAL, "metric": NUMERIC}


def make_relation(name, rng, domain, num_rows=40, key_span=50):
    """A relation whose key/tag columns live in ``domain``'s vocabulary."""
    columns = {
        "key": [f"{domain}_{rng.randint(0, key_span)}" for _ in range(num_rows)],
        "tag": [f"{domain}tag{rng.randint(0, 8)}" for _ in range(num_rows)],
        "metric": [float(i) for i in range(num_rows)],
    }
    return Relation(name, columns, Schema.from_spec(SPEC))


def make_corpus(rng, num_datasets, num_domains=7):
    domains = [f"dom{i}" for i in range(num_domains)]
    return [
        make_relation(f"ds{i}", rng, rng.choice(domains)) for i in range(num_datasets)
    ]


def build_indexes(relations, **kwargs):
    """The same corpus registered into scalar, vectorized, and LSH indexes."""
    scalar = DiscoveryIndex(vectorized=False, **kwargs)
    vectorized = DiscoveryIndex(vectorized=True, **kwargs)
    lsh = DiscoveryIndex(vectorized=True, use_lsh=True, **kwargs)
    for relation in relations:
        scalar.register(relation)
        vectorized.register(relation)
        lsh.register(relation)
    return scalar, vectorized, lsh


def assert_join_parity(reference, candidate_index, query, top_k=None):
    expected = reference.join_candidates_scalar(query, top_k)
    actual = candidate_index.join_candidates(query, top_k)
    assert [
        (c.dataset, c.query_column, c.candidate_column) for c in actual
    ] == [(c.dataset, c.query_column, c.candidate_column) for c in expected]
    for got, want in zip(actual, expected):
        assert got.similarity == pytest.approx(want.similarity, abs=1e-12)
    assert actual == expected  # bit-equal similarities, same ordering


def assert_union_parity(reference, candidate_index, query, top_k=None):
    expected = reference.union_candidates_scalar(query, top_k)
    actual = candidate_index.union_candidates(query, top_k)
    assert [(c.dataset, c.column_mapping) for c in actual] == [
        (c.dataset, c.column_mapping) for c in expected
    ]
    for got, want in zip(actual, expected):
        assert got.similarity == pytest.approx(want.similarity, abs=1e-12)
    assert actual == expected


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_join_and_union_parity(seed):
    rng = random.Random(seed)
    relations = make_corpus(rng, num_datasets=50)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    for _ in range(4):
        query = make_relation("query", rng, f"dom{rng.randint(0, 6)}")
        assert_join_parity(scalar, vectorized, query)
        assert_union_parity(scalar, vectorized, query)
        assert_join_parity(scalar, lsh, query)


@pytest.mark.parametrize("seed", [3, 4])
def test_parity_survives_register_unregister_churn(seed):
    rng = random.Random(seed)
    relations = make_corpus(rng, num_datasets=40)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    indexes = (scalar, vectorized, lsh)
    for round_number in range(3):
        victims = rng.sample([r.name for r in relations], k=8)
        for name in victims:
            for index in indexes:
                index.unregister(name)
        # Re-register a shuffled subset so registration order diverges from
        # the original insertion order in all indexes identically.
        revived = rng.sample(victims, k=4)
        for name in revived:
            relation = next(r for r in relations if r.name == name)
            for index in indexes:
                index.register(relation)
        query = make_relation("query", rng, f"dom{rng.randint(0, 6)}")
        assert_join_parity(scalar, vectorized, query)
        assert_union_parity(scalar, vectorized, query)
        assert_join_parity(scalar, lsh, query)
        assert len(vectorized) == len(scalar)
        assert len(lsh) == len(scalar)


def test_reregistration_replaces_packed_rows():
    rng = random.Random(9)
    relations = make_corpus(rng, num_datasets=12)
    scalar, vectorized, _ = build_indexes(relations, join_threshold=0.1)
    replacement = make_relation(relations[3].name, rng, "dom0")
    scalar.register(replacement)
    vectorized.register(replacement)
    query = make_relation("query", rng, "dom0")
    assert_join_parity(scalar, vectorized, query)
    assert_union_parity(scalar, vectorized, query)


def test_top_k_and_self_exclusion_parity():
    rng = random.Random(5)
    relations = make_corpus(rng, num_datasets=25)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    query = make_relation("query", rng, "dom1")
    for index in (scalar, vectorized, lsh):
        index.register(query)
    for top_k in (0, 1, 5, None):
        assert_join_parity(scalar, vectorized, query, top_k)
        assert_union_parity(scalar, vectorized, query, top_k)
    assert all(c.dataset != "query" for c in vectorized.join_candidates(query))
    assert all(c.dataset != "query" for c in lsh.join_candidates(query))


def test_empty_index_and_empty_query():
    vectorized = DiscoveryIndex()
    query = make_relation("query", random.Random(0), "dom0")
    assert vectorized.join_candidates(query) == []
    assert vectorized.union_candidates(query) == []
    # Query with no joinable columns against a populated index.
    numeric_only = Relation(
        "numbers",
        {"metric": [float(i) for i in range(10)]},
        Schema.from_spec({"metric": NUMERIC}),
    )
    rng = random.Random(1)
    scalar, vec, lsh = build_indexes(make_corpus(rng, 10), join_threshold=0.1)
    assert_join_parity(scalar, vec, numeric_only)
    assert vec.join_candidates(numeric_only) == []
    assert lsh.join_candidates(numeric_only) == []


def test_lsh_results_are_subset_of_exact_on_adversarial_corpus():
    """With weak overlaps LSH may prune, but never invents candidates."""
    rng = random.Random(11)
    relations = make_corpus(rng, num_datasets=60, num_domains=3)
    scalar, _, lsh = build_indexes(relations, join_threshold=0.05)
    query = make_relation("query", rng, "dom0", key_span=400)
    exact = {
        (c.dataset, c.query_column, c.candidate_column): c.similarity
        for c in scalar.join_candidates_scalar(query)
    }
    for candidate in lsh.join_candidates(query):
        key = (candidate.dataset, candidate.query_column, candidate.candidate_column)
        # Every LSH candidate must be scored identically to the exact scan
        # for the same column pair (pruning may swap in a lesser pair for a
        # dataset, but the reported pair's similarity is always exact).
        if key in exact:
            assert candidate.similarity == exact[key]


def test_lsh_bands_must_divide_num_hashes():
    with pytest.raises(DiscoveryError):
        DiscoveryIndex(use_lsh=True, lsh_bands=7)


def test_foreign_width_profile_falls_back_to_scalar():
    from repro.discovery import MinHasher

    rng = random.Random(6)
    index = DiscoveryIndex(join_threshold=0.1)
    for relation in make_corpus(rng, 8):
        index.register(relation)
    foreign = profile_relation(make_relation("foreign", rng, "dom0"), MinHasher(num_hashes=32))
    index.register_profile(foreign)
    # The packed matrix cannot hold 32-wide rows next to 64-wide ones, so
    # joins take the scalar path — which raises on the mismatched pair,
    # exactly as the historical flat index did.
    query = make_relation("query", rng, "dom0")
    with pytest.raises(DiscoveryError):
        index.join_candidates(query)


# -- engine unit tests ---------------------------------------------------------


def test_packed_matrix_add_remove_recycles_rows():
    matrix = PackedSignatureMatrix(num_hashes=8)
    signature = np.arange(8, dtype=np.int64)
    matrix.add("a", "x", signature, 3)
    matrix.add("a", "y", signature + 1, 3)
    matrix.add("b", "x", signature + 2, 3)
    assert len(matrix) == 3
    assert "a" in matrix and "b" in matrix
    matrix.remove_dataset("a")
    assert len(matrix) == 1
    assert "a" not in matrix
    matrix.add("c", "z", signature + 3, 3)
    matrix.add("c", "w", signature + 4, 3)
    assert len(matrix) == 3  # freed rows were reused
    row_ids, starts, segments, selected, empty = matrix.layout()
    assert [dataset for dataset, _, _ in segments] == ["b", "c"]
    assert row_ids.size == 3
    assert segments[1][2] == ["z", "w"]
    assert selected.shape == (3, 8)
    assert not empty.any()


def test_packed_matrix_rejects_bad_widths():
    matrix = PackedSignatureMatrix(num_hashes=8)
    with pytest.raises(DiscoveryError):
        matrix.add("a", "x", np.arange(4, dtype=np.int64), 1)
    with pytest.raises(DiscoveryError):
        PackedSignatureMatrix(num_hashes=8, lsh_bands=3)


def test_lsh_candidate_rows_find_identical_signatures():
    matrix = PackedSignatureMatrix(num_hashes=8, lsh_bands=4)
    signature = np.arange(8, dtype=np.int64)
    matrix.add("a", "x", signature, 3)
    matrix.add("b", "x", signature * 100 + 7, 3)
    candidates = matrix.candidate_rows(signature[None, :])
    assert 0 in candidates and 1 not in candidates


def test_token_index_refcounts_shared_tokens():
    index = TokenIndex()
    index.add("ds1", ["zip", "price", "zip"])  # zip appears in two columns
    index.add("ds2", ["zip"])
    assert index.datasets_sharing(["zip"]) == {"ds1", "ds2"}
    index.remove("ds1", ["zip"])  # one of ds1's two zip columns leaves
    assert index.datasets_sharing(["zip"]) == {"ds1", "ds2"}
    index.remove("ds1", ["zip", "price"])
    assert index.datasets_sharing(["zip"]) == {"ds2"}
    assert index.datasets_sharing(["price"]) == set()


def test_versioned_cache_invalidates_on_version_change():
    version = {"value": 0}
    cache = VersionedCache(lambda: version["value"])
    calls = []

    def compute():
        calls.append(1)
        return len(calls)

    assert cache.get_or_compute("k", compute) == 1
    assert cache.get_or_compute("k", compute) == 1
    version["value"] += 1
    assert cache.get_or_compute("k", compute) == 2
    assert cache.get_or_compute("k", compute) == 2


def test_unregistering_foreign_width_profile_restores_fast_path():
    from repro.discovery import MinHasher

    rng = random.Random(8)
    relations = make_corpus(rng, 10)
    scalar, vectorized, _ = build_indexes(relations, join_threshold=0.1)
    foreign = profile_relation(
        make_relation("foreign", rng, "dom0"), MinHasher(num_hashes=16)
    )
    vectorized.register_profile(foreign)
    query = make_relation("query", rng, "dom0")
    with pytest.raises(DiscoveryError):
        vectorized.join_candidates(query)
    vectorized.unregister("foreign")
    # The offender is gone: the vectorized path serves again, at parity.
    assert_join_parity(scalar, vectorized, query)


def test_grouped_rows_preserves_registration_order():
    matrix = PackedSignatureMatrix(num_hashes=8)
    signature = np.arange(8, dtype=np.int64)
    for dataset, column in [("b", "x"), ("a", "x"), ("a", "y"), ("c", "x")]:
        matrix.add(dataset, column, signature, 1)
    all_rows = set(range(4))
    assert matrix.grouped_rows(all_rows) == [
        ("b", [0], ["x"]),
        ("a", [1, 2], ["x", "y"]),
        ("c", [3], ["x"]),
    ]
    # Removal + re-registration moves a dataset to the end of the order,
    # and freed rows reused by another dataset keep their column order.
    matrix.remove_dataset("a")
    matrix.add("a", "z", signature + 1, 1)
    live = {0, 3} | set(matrix.rows_for("a"))
    assert matrix.grouped_rows(live) == [
        ("b", [0], ["x"]),
        ("c", [3], ["x"]),
        ("a", matrix.rows_for("a"), ["z"]),
    ]


def test_invalid_lsh_band_counts_raise_discovery_error():
    for bands in (0, -4, 7):
        with pytest.raises(DiscoveryError):
            DiscoveryIndex(use_lsh=True, lsh_bands=bands)
