"""Tests for TF-IDF sketches and column/dataset profiles."""

import numpy as np
import pytest

from repro.discovery import IdfModel, TfIdfSketch, profile_relation, tokenize
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema


def test_tokenize_lowercases_and_splits():
    assert tokenize("Taxi_Zone ID-42") == ["taxi", "zone", "id", "42"]


def test_identical_columns_have_cosine_one():
    sketch = TfIdfSketch.from_column("price", ["10", "20", "30"])
    assert sketch.cosine(sketch) == pytest.approx(1.0)


def test_different_columns_have_lower_cosine():
    price = TfIdfSketch.from_column("price_usd", ["cheap", "expensive"])
    borough = TfIdfSketch.from_column("borough_name", ["brooklyn", "queens"])
    similar = TfIdfSketch.from_column("price_dollars", ["cheap", "mid"])
    assert price.cosine(similar) > price.cosine(borough)


def test_empty_sketch_cosine_is_zero():
    empty = TfIdfSketch({}, 0)
    other = TfIdfSketch.from_column("a", ["x"])
    assert empty.cosine(other) == 0.0


def test_idf_model_downweights_common_terms():
    model = IdfModel()
    common = TfIdfSketch.from_column("id", ["1"])
    rare = TfIdfSketch.from_column("wind_speed", ["5"])
    for _ in range(10):
        model.add_document(common)
    model.add_document(rare)
    idf = model.idf()
    assert idf["wind"] > idf["id"]


def test_idf_empty_model():
    assert IdfModel().idf() == {}


def test_profile_relation_numeric_and_categorical():
    relation = Relation(
        "listings",
        {
            "zip": ["10001", "10002", "10001"],
            "price": [100.0, np.nan, 300.0],
        },
        Schema.from_spec({"zip": KEY, "price": NUMERIC}),
    )
    profile = profile_relation(relation)
    assert profile.dataset == "listings"
    assert profile.row_count == 3

    zip_profile = profile.columns["zip"]
    assert zip_profile.dtype == "key"
    assert zip_profile.distinct_count == 2
    assert zip_profile.is_joinable
    assert zip_profile.minhash is not None

    price_profile = profile.columns["price"]
    assert price_profile.dtype == "numeric"
    assert price_profile.null_count == 1
    assert price_profile.minimum == 100.0
    assert price_profile.maximum == 300.0
    assert not price_profile.is_joinable


def test_profile_uniqueness_and_helpers():
    relation = Relation(
        "r",
        {"id": ["a", "b", "c"], "x": [1.0, 2.0, 3.0]},
        Schema.from_spec({"id": CATEGORICAL, "x": NUMERIC}),
    )
    profile = profile_relation(relation)
    assert profile.columns["id"].uniqueness == 1.0
    assert [c.column for c in profile.joinable_columns()] == ["id"]
    assert [c.column for c in profile.numeric_columns()] == ["x"]
    assert profile.column_names() == ["id", "x"]
