"""Tests for TF-IDF sketches and column/dataset profiles."""

import numpy as np
import pytest

from repro.discovery import IdfModel, TfIdfSketch, profile_relation, tokenize
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema


def test_tokenize_lowercases_and_splits():
    assert tokenize("Taxi_Zone ID-42") == ["taxi", "zone", "id", "42"]


def test_identical_columns_have_cosine_one():
    sketch = TfIdfSketch.from_column("price", ["10", "20", "30"])
    assert sketch.cosine(sketch) == pytest.approx(1.0)


def test_different_columns_have_lower_cosine():
    price = TfIdfSketch.from_column("price_usd", ["cheap", "expensive"])
    borough = TfIdfSketch.from_column("borough_name", ["brooklyn", "queens"])
    similar = TfIdfSketch.from_column("price_dollars", ["cheap", "mid"])
    assert price.cosine(similar) > price.cosine(borough)


def test_empty_sketch_cosine_is_zero():
    empty = TfIdfSketch({}, 0)
    other = TfIdfSketch.from_column("a", ["x"])
    assert empty.cosine(other) == 0.0


def test_idf_model_downweights_common_terms():
    model = IdfModel()
    common = TfIdfSketch.from_column("id", ["1"])
    rare = TfIdfSketch.from_column("wind_speed", ["5"])
    for _ in range(10):
        model.add_document(common)
    model.add_document(rare)
    idf = model.idf()
    assert idf["wind"] > idf["id"]


def test_idf_empty_model():
    assert IdfModel().idf() == {}


def test_profile_relation_numeric_and_categorical():
    relation = Relation(
        "listings",
        {
            "zip": ["10001", "10002", "10001"],
            "price": [100.0, np.nan, 300.0],
        },
        Schema.from_spec({"zip": KEY, "price": NUMERIC}),
    )
    profile = profile_relation(relation)
    assert profile.dataset == "listings"
    assert profile.row_count == 3

    zip_profile = profile.columns["zip"]
    assert zip_profile.dtype == "key"
    assert zip_profile.distinct_count == 2
    assert zip_profile.is_joinable
    assert zip_profile.minhash is not None

    price_profile = profile.columns["price"]
    assert price_profile.dtype == "numeric"
    assert price_profile.null_count == 1
    assert price_profile.minimum == 100.0
    assert price_profile.maximum == 300.0
    assert not price_profile.is_joinable


def test_profile_uniqueness_and_helpers():
    relation = Relation(
        "r",
        {"id": ["a", "b", "c"], "x": [1.0, 2.0, 3.0]},
        Schema.from_spec({"id": CATEGORICAL, "x": NUMERIC}),
    )
    profile = profile_relation(relation)
    assert profile.columns["id"].uniqueness == 1.0
    assert [c.column for c in profile.joinable_columns()] == ["id"]
    assert [c.column for c in profile.numeric_columns()] == ["x"]
    assert profile.column_names() == ["id", "x"]


# -- caching layers (vectorized discovery engine) ------------------------------
def test_idf_is_memoised_until_version_changes():
    model = IdfModel()
    sketch = TfIdfSketch.from_column("zipcode", ["10001", "10002"])
    model.add_document(sketch)
    first = model.idf()
    assert model.idf() is first  # memoised: same object until a mutation
    model.add_document(TfIdfSketch.from_column("price", []))
    second = model.idf()
    assert second is not first
    assert model.idf() is second


def test_idf_version_counts_mutations():
    model = IdfModel()
    sketch = TfIdfSketch.from_column("zipcode", ["10001"])
    assert model.version == 0
    model.add_document(sketch)
    assert model.version == 1
    model.remove_document(sketch)
    assert model.version == 2
    model.remove_document(sketch)  # no-op on an empty model
    assert model.version == 2


def test_sketch_self_norm_is_cached_and_correct():
    import math

    sketch = TfIdfSketch.from_column("zip code", ["a b", "a"])
    expected = math.sqrt(sum(count ** 2 for count in sketch.term_counts.values()))
    assert sketch.norm() == expected
    assert sketch.norm() == expected  # second call served from the cache
    idf = {"zip": 2.0, "code": 0.5}
    weighted = math.sqrt(
        sum((c * idf.get(t, 1.0)) ** 2 for t, c in sketch.term_counts.items())
    )
    assert sketch.norm(idf) == weighted


def test_cosine_with_norms_matches_cosine():
    left = TfIdfSketch.from_column("zipcode", ["10001 center", "10002"])
    right = TfIdfSketch.from_column("zip", ["10001", "10009 center"])
    for idf in (None, {"10001": 3.0, "center": 0.25}):
        expected = left.cosine(right, idf)
        actual = left.cosine_with_norms(right, idf, left.norm(idf), right.norm(idf))
        assert actual == expected


def test_profile_sketch_tokens_cover_every_column():
    relation = Relation(
        "listings",
        {"zip": ["10001", "10002"], "price": [1.0, 2.0]},
        Schema.from_spec({"zip": KEY, "price": NUMERIC}),
    )
    profile = profile_relation(relation)
    tokens = set(profile.sketch_tokens())
    assert "zip" in tokens and "price" in tokens and "10001" in tokens
