"""PR 4 contracts: sparse union scoring and adaptive multi-probe LSH.

Two promises are pinned here:

* the sparse term-matrix union path is **bit-identical** to the scalar
  oracle (same candidates, same order, equal floats) including under
  register/unregister churn that recycles matrix rows; and
* adaptive banding's measured join recall on a seeded corpus is at least
  the configured target, and multi-probe never loses candidates relative
  to plain banding at the same band count.
"""

import random

import numpy as np
import pytest

from repro.discovery import (
    DiscoveryIndex,
    PackedSignatureMatrix,
    SparseTermMatrix,
    TfIdfSketch,
    adaptive_lsh_bands,
    lsh_recall,
)
from repro.exceptions import DiscoveryError
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema

SPEC = {"key": KEY, "tag": CATEGORICAL, "metric": NUMERIC}


def make_relation(name, rng, domain, num_rows=40, key_span=50):
    columns = {
        "key": [f"{domain}_{rng.randint(0, key_span)}" for _ in range(num_rows)],
        "tag": [f"{domain}tag{rng.randint(0, 8)}" for _ in range(num_rows)],
        "metric": [float(i) for i in range(num_rows)],
    }
    return Relation(name, columns, Schema.from_spec(SPEC))


def make_corpus(rng, num_datasets, num_domains=7, key_span=50):
    domains = [f"dom{i}" for i in range(num_domains)]
    return [
        make_relation(f"ds{i}", rng, rng.choice(domains), key_span=key_span)
        for i in range(num_datasets)
    ]


def assert_union_parity(scalar, vectorized, query, top_k=None):
    expected = scalar.union_candidates_scalar(query, top_k)
    actual = vectorized.union_candidates(query, top_k)
    assert actual == expected  # same datasets, mappings, order, bit-equal floats


# -- sparse union parity -------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_sparse_union_parity_under_churn(seed):
    """CSR-path results stay bit-identical through row-recycling churn."""
    rng = random.Random(seed)
    relations = make_corpus(rng, num_datasets=40)
    scalar = DiscoveryIndex(vectorized=False, union_threshold=0.2)
    vectorized = DiscoveryIndex(union_threshold=0.2)
    for relation in relations:
        scalar.register(relation)
        vectorized.register(relation)
    for round_number in range(4):
        victims = rng.sample([r.name for r in relations], k=10)
        for name in victims:
            scalar.unregister(name)
            vectorized.unregister(name)
        for name in rng.sample(victims, k=5):
            relation = next(r for r in relations if r.name == name)
            scalar.register(relation)
            vectorized.register(relation)
        query = make_relation("query", rng, f"dom{rng.randint(0, 6)}")
        assert_union_parity(scalar, vectorized, query)
        assert_union_parity(scalar, vectorized, query, top_k=3)


def test_sparse_union_parity_across_thresholds():
    rng = random.Random(3)
    relations = make_corpus(rng, num_datasets=30)
    query = make_relation("query", rng, "dom2")
    for threshold in (0.05, 0.3, 0.6, 0.95):
        scalar = DiscoveryIndex(vectorized=False, union_threshold=threshold)
        vectorized = DiscoveryIndex(union_threshold=threshold)
        for relation in relations:
            scalar.register(relation)
            vectorized.register(relation)
        assert_union_parity(scalar, vectorized, query)


def test_sparse_union_handles_numeric_only_and_empty_overlap():
    """Numeric columns union by name-token cosine; disjoint corpora score empty."""
    rng = random.Random(4)
    scalar = DiscoveryIndex(vectorized=False, union_threshold=0.2)
    vectorized = DiscoveryIndex(union_threshold=0.2)
    numbers = Relation(
        "numbers",
        {"metric": [float(i) for i in range(12)], "extra": [1.0] * 12},
        Schema.from_spec({"metric": NUMERIC, "extra": NUMERIC}),
    )
    for relation in [*make_corpus(rng, 10), numbers]:
        scalar.register(relation)
        vectorized.register(relation)
    numeric_query = Relation(
        "nq",
        {"metric": [float(i) for i in range(5)]},
        Schema.from_spec({"metric": NUMERIC}),
    )
    assert_union_parity(scalar, vectorized, numeric_query)
    assert any(
        candidate.dataset == "numbers"
        for candidate in vectorized.union_candidates(numeric_query)
    )
    disjoint = Relation(
        "disjoint",
        {"zzz": [f"x{i}" for i in range(5)]},
        Schema.from_spec({"zzz": CATEGORICAL}),
    )
    assert_union_parity(scalar, vectorized, disjoint)


def test_sparse_union_reregistration_and_self_exclusion():
    rng = random.Random(6)
    relations = make_corpus(rng, 15)
    scalar = DiscoveryIndex(vectorized=False, union_threshold=0.2)
    vectorized = DiscoveryIndex(union_threshold=0.2)
    for relation in relations:
        scalar.register(relation)
        vectorized.register(relation)
    replacement = make_relation(relations[4].name, rng, "dom1")
    scalar.register(replacement)
    vectorized.register(replacement)
    query = make_relation("query", rng, "dom1")
    scalar.register(query)
    vectorized.register(query)
    assert_union_parity(scalar, vectorized, query)
    assert all(
        candidate.dataset != "query"
        for candidate in vectorized.union_candidates(query)
    )


def test_sharded_union_uses_sparse_path_at_parity():
    from repro.serving.sharded import ShardedDiscoveryIndex

    rng = random.Random(7)
    relations = make_corpus(rng, 24)
    flat = DiscoveryIndex(vectorized=False, union_threshold=0.2)
    sharded = ShardedDiscoveryIndex(num_shards=3, union_threshold=0.2)
    for relation in relations:
        flat.register(relation)
        sharded.register(relation)
    query = make_relation("query", rng, "dom3")
    assert sharded.union_candidates(query) == flat.union_candidates_scalar(query)


# -- sparse term matrix unit tests ---------------------------------------------


def sketch_of(**term_counts):
    return TfIdfSketch(dict(term_counts), sum(term_counts.values()))


def test_sparse_term_matrix_add_remove_recycles_rows():
    matrix = SparseTermMatrix()
    matrix.add("a", "x", "categorical", sketch_of(zip=2, city=1))
    matrix.add("a", "y", "key", sketch_of(zip=1))
    matrix.add("b", "x", "categorical", sketch_of(city=3))
    assert len(matrix) == 3 and "a" in matrix and "b" in matrix
    matrix.remove_dataset("a")
    assert len(matrix) == 1 and "a" not in matrix
    matrix.add("c", "z", "numeric", sketch_of(zip=5))
    assert len(matrix) == 2
    assert matrix.capacity == 3  # freed rows were reused, not appended
    idf = {"zip": 2.0, "city": 1.0}
    dot = matrix.weighted_dot({"zip": 1}, idf)
    [c_row] = matrix.rows_for("c")
    [b_row] = matrix.rows_for("b")
    assert dot[c_row] == (1 * 2.0) * (5 * 2.0)
    assert dot[b_row] == 0.0
    assert matrix.datasets_of_rows([b_row, c_row]) == ["b", "c"]


def test_sparse_term_matrix_weighted_cache_tracks_idf_snapshot():
    matrix = SparseTermMatrix()
    matrix.add("a", "x", "key", sketch_of(tok=2))
    [row] = matrix.rows_for("a")
    first = matrix.weighted_dot({"tok": 1}, {"tok": 3.0})
    assert first[row] == (1 * 3.0) * (2 * 3.0)
    # A *new* idf dict (what IdfModel hands out after a version bump) must
    # invalidate the cached weighted postings.
    second = matrix.weighted_dot({"tok": 1}, {"tok": 5.0})
    assert second[row] == (1 * 5.0) * (2 * 5.0)


def test_sparse_term_matrix_compatibility_masks():
    matrix = SparseTermMatrix()
    matrix.add("a", "n", "numeric", sketch_of(metric=1))
    matrix.add("a", "k", "key", sketch_of(key=1))
    matrix.add("a", "c", "categorical", sketch_of(tag=1))
    assert matrix.compatible_rows("numeric").tolist() == [True, False, False]
    assert matrix.compatible_rows("key").tolist() == [False, True, True]
    assert matrix.compatible_rows("categorical").tolist() == [False, True, True]


# -- adaptive banding ----------------------------------------------------------


def test_adaptive_bands_properties():
    for threshold in (0.1, 0.3, 0.5, 0.8):
        for target in (0.5, 0.9, 0.99):
            bands = adaptive_lsh_bands(64, threshold, target)
            assert 64 % bands == 0
            assert lsh_recall(threshold, bands, 64 // bands) >= target or bands == 64
            # Multi-probe can only relax the band count, never tighten it.
            assert adaptive_lsh_bands(64, threshold, target, multi_probe=True) <= bands


def test_lsh_knobs_require_use_lsh():
    with pytest.raises(DiscoveryError):
        DiscoveryIndex(target_recall=0.9)
    with pytest.raises(DiscoveryError):
        DiscoveryIndex(multi_probe=True)


def test_adaptive_bands_validation():
    with pytest.raises(DiscoveryError):
        adaptive_lsh_bands(64, 0.3, 0.0)
    with pytest.raises(DiscoveryError):
        adaptive_lsh_bands(64, 0.3, 1.5)
    with pytest.raises(DiscoveryError):
        lsh_recall(0.3, bands=0, rows=4)


def test_adaptive_index_resolves_band_count():
    index = DiscoveryIndex(use_lsh=True, target_recall=0.9, join_threshold=0.3)
    assert index.lsh_bands == adaptive_lsh_bands(64, 0.3, 0.9)
    from repro.serving.sharded import ShardedDiscoveryIndex

    sharded = ShardedDiscoveryIndex(
        num_shards=2, use_lsh=True, target_recall=0.9, multi_probe=True
    )
    assert sharded.lsh_bands == adaptive_lsh_bands(64, 0.3, 0.9, multi_probe=True)
    assert sharded.multi_probe and sharded.target_recall == 0.9


def test_multi_probe_candidate_rows_catch_near_misses():
    matrix = PackedSignatureMatrix(num_hashes=8, lsh_bands=2, multi_probe=True)
    signature = np.arange(8, dtype=np.int64)
    near_miss = signature.copy()
    near_miss[1] += 100  # one disagreeing row in each band: plain banding
    near_miss[5] += 100  # misses, all-but-one probing still collides
    far = signature + 1000  # disagrees everywhere
    matrix.add("near", "x", near_miss, 3)
    matrix.add("far", "x", far, 3)
    plain = PackedSignatureMatrix(num_hashes=8, lsh_bands=2)
    plain.add("near", "x", near_miss, 3)
    plain.add("far", "x", far, 3)
    assert plain.candidate_rows(signature[None, :]) == set()
    assert matrix.candidate_rows(signature[None, :]) == {0}
    matrix.remove_dataset("near")
    assert matrix.candidate_rows(signature[None, :]) == set()


def test_multi_probe_results_superset_of_plain_lsh():
    rng = random.Random(11)
    relations = make_corpus(rng, 50, num_domains=3, key_span=250)
    plain = DiscoveryIndex(use_lsh=True, lsh_bands=16, join_threshold=0.05)
    probed = DiscoveryIndex(
        use_lsh=True, lsh_bands=16, multi_probe=True, join_threshold=0.05
    )
    for relation in relations:
        plain.register(relation)
        probed.register(relation)
    for index in range(4):
        query = make_relation(f"q{index}", rng, f"dom{index % 3}", key_span=250)
        plain_hits = {c.dataset for c in plain.join_candidates(query)}
        probed_hits = {c.dataset for c in probed.join_candidates(query)}
        assert plain_hits <= probed_hits


def test_adaptive_lsh_measured_recall_meets_target():
    """On a seeded corpus, adaptive banding delivers its promised recall."""
    target = 0.9
    rng = random.Random(13)
    relations = make_corpus(rng, 60, num_domains=4, key_span=120)
    exact = DiscoveryIndex(join_threshold=0.2)
    adaptive = DiscoveryIndex(
        use_lsh=True, target_recall=target, multi_probe=True, join_threshold=0.2
    )
    for relation in relations:
        exact.register(relation)
        adaptive.register(relation)
    found = total = 0
    for index in range(12):
        query = make_relation(f"q{index}", rng, f"dom{index % 4}", key_span=120)
        truth = {c.dataset for c in exact.join_candidates(query)}
        hits = {c.dataset for c in adaptive.join_candidates(query)}
        found += len(truth & hits)
        total += len(truth)
    assert total > 0
    assert found / total >= target
