"""Differential batch parity: batched kernels vs per-query vectorized vs scalar.

The micro-batching stage is only sound if a batched kernel call is a pure
reshaping of per-query work: for every query in a batch, the candidate
list must be **byte-identical** to what a solo vectorized query and the
scalar oracle produce — same candidates, same order, and bit-equal
similarity floats (asserted on the IEEE-754 byte encoding, so even a
`-0.0` vs `0.0` discrepancy would fail).  The harness sweeps batch sizes
1/2/7/64, duplicate queries, mixed thresholds, LSH pruning, registry
churn between batches, and the sharded fan-out.
"""

import math
import random
import struct

import numpy as np
import pytest

from repro.discovery import DiscoveryIndex
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema
from repro.serving.sharded import ShardedDiscoveryIndex

SPEC = {"key": KEY, "tag": CATEGORICAL, "metric": NUMERIC}

BATCH_SIZES = [1, 2, 7, 64]


def make_relation(name, rng, domain, num_rows=40, key_span=50):
    """A relation whose key/tag columns live in ``domain``'s vocabulary."""
    columns = {
        "key": [f"{domain}_{rng.randint(0, key_span)}" for _ in range(num_rows)],
        "tag": [f"{domain}tag{rng.randint(0, 8)}" for _ in range(num_rows)],
        "metric": [float(i) for i in range(num_rows)],
    }
    return Relation(name, columns, Schema.from_spec(SPEC))


def make_corpus(rng, num_datasets, num_domains=7):
    domains = [f"dom{i}" for i in range(num_domains)]
    return [
        make_relation(f"ds{i}", rng, rng.choice(domains)) for i in range(num_datasets)
    ]


def make_batch(rng, size):
    """``size`` query relations; batches of ≥3 repeat a query verbatim."""
    queries = [
        make_relation(f"query{i}", rng, f"dom{rng.randint(0, 6)}")
        for i in range(size)
    ]
    if size >= 3:
        queries[-1] = queries[0]
    return queries


def build_indexes(relations, **kwargs):
    """The same corpus registered into scalar, vectorized, and LSH indexes."""
    scalar = DiscoveryIndex(vectorized=False, **kwargs)
    vectorized = DiscoveryIndex(vectorized=True, **kwargs)
    lsh = DiscoveryIndex(vectorized=True, use_lsh=True, **kwargs)
    for relation in relations:
        scalar.register(relation)
        vectorized.register(relation)
        lsh.register(relation)
    return scalar, vectorized, lsh


def sim_bytes(candidates):
    """IEEE-754 encodings of every similarity — the byte-level identity."""
    return [struct.pack("<d", candidate.similarity) for candidate in candidates]


def assert_identical(got, want):
    assert got == want
    assert sim_bytes(got) == sim_bytes(want)


def assert_join_batch_parity(scalar, index, queries, top_k=None):
    batched = index.join_candidates_batch(queries, top_k)
    assert len(batched) == len(queries)
    for query, got in zip(queries, batched):
        assert_identical(got, index.join_candidates(query, top_k))
        if not index.use_lsh:
            assert_identical(got, scalar.join_candidates_scalar(query, top_k))


def assert_union_batch_parity(scalar, index, queries, top_k=None):
    batched = index.union_candidates_batch(queries, top_k)
    assert len(batched) == len(queries)
    for query, got in zip(queries, batched):
        assert_identical(got, index.union_candidates(query, top_k))
        assert_identical(got, scalar.union_candidates_scalar(query, top_k))


@pytest.mark.parametrize("size", BATCH_SIZES)
@pytest.mark.parametrize("seed", [0, 1])
def test_batch_parity_across_sizes(seed, size):
    rng = random.Random(seed)
    relations = make_corpus(rng, num_datasets=40)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    queries = make_batch(rng, size)
    assert_join_batch_parity(scalar, vectorized, queries)
    assert_union_batch_parity(scalar, vectorized, queries)
    assert_join_batch_parity(scalar, lsh, queries)
    # The LSH batch must also match the solo LSH path candidate for
    # candidate (both prune with the same per-query adaptive sets).
    assert_union_batch_parity(scalar, lsh, queries)


@pytest.mark.parametrize(
    ("join_threshold", "union_threshold"), [(0.05, 0.15), (0.3, 0.55), (0.6, 0.8)]
)
def test_batch_parity_across_thresholds(join_threshold, union_threshold):
    rng = random.Random(7)
    relations = make_corpus(rng, num_datasets=30)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=join_threshold, union_threshold=union_threshold
    )
    queries = make_batch(rng, 7)
    assert_join_batch_parity(scalar, vectorized, queries)
    assert_union_batch_parity(scalar, vectorized, queries)
    assert_join_batch_parity(scalar, lsh, queries)


def test_batch_parity_with_top_k():
    rng = random.Random(2)
    relations = make_corpus(rng, num_datasets=30)
    scalar, vectorized, _ = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    queries = make_batch(rng, 7)
    for top_k in (0, 1, 5, None):
        assert_join_batch_parity(scalar, vectorized, queries, top_k)
        assert_union_batch_parity(scalar, vectorized, queries, top_k)


@pytest.mark.parametrize("seed", [3, 4])
def test_batch_parity_under_churn(seed):
    """Batches stay at parity while the registry churns between them."""
    rng = random.Random(seed)
    relations = make_corpus(rng, num_datasets=30)
    scalar, vectorized, lsh = build_indexes(
        relations, join_threshold=0.1, union_threshold=0.2
    )
    indexes = (scalar, vectorized, lsh)
    for round_number in range(3):
        victims = rng.sample([r.name for r in relations], k=6)
        for name in victims:
            for index in indexes:
                index.unregister(name)
        revived = rng.sample(victims, k=3)
        for name in revived:
            relation = next(r for r in relations if r.name == name)
            for index in indexes:
                index.register(relation)
        queries = make_batch(rng, 7)
        assert_join_batch_parity(scalar, vectorized, queries)
        assert_union_batch_parity(scalar, vectorized, queries)
        assert_join_batch_parity(scalar, lsh, queries)


def test_batch_parity_sharded_fanout():
    """The sharded batch fan-out matches sharded solo and the flat oracle."""
    rng = random.Random(5)
    relations = make_corpus(rng, num_datasets=30)
    scalar = DiscoveryIndex(
        vectorized=False, join_threshold=0.1, union_threshold=0.2
    )
    sharded = ShardedDiscoveryIndex(
        num_shards=3, join_threshold=0.1, union_threshold=0.2
    )
    for relation in relations:
        scalar.register(relation)
        sharded.register(relation)
    queries = make_batch(rng, 7)
    for got, query in zip(sharded.join_candidates_batch(queries), queries):
        assert_identical(got, sharded.join_candidates(query))
        assert_identical(got, scalar.join_candidates_scalar(query))
    for got, query in zip(sharded.union_candidates_batch(queries), queries):
        assert_identical(got, sharded.union_candidates(query))
        assert_identical(got, scalar.union_candidates_scalar(query))


def test_batch_parity_sharded_fanout_with_cache():
    """Cached and kernel-computed entries of one batch are identical."""
    rng = random.Random(6)
    relations = make_corpus(rng, num_datasets=20)
    sharded = ShardedDiscoveryIndex(
        num_shards=2, join_threshold=0.1, union_threshold=0.2, cache_capacity=64
    )
    for relation in relations:
        sharded.register(relation)
    queries = make_batch(rng, 7)
    # Warm the cache with a couple of solo queries, then batch over a mix
    # of warm and cold fingerprints (plus the built-in duplicate).
    warm_join = [sharded.join_candidates(queries[1]), sharded.join_candidates(queries[4])]
    batched = sharded.join_candidates_batch(queries)
    assert_identical(batched[1], warm_join[0])
    assert_identical(batched[4], warm_join[1])
    for got, query in zip(batched, queries):
        assert_identical(got, sharded.join_candidates(query))
    warm_union = sharded.union_candidates(queries[0])
    batched = sharded.union_candidates_batch(queries)
    assert_identical(batched[0], warm_union)
    assert_identical(batched[-1], warm_union)  # duplicate of queries[0]
    for got, query in zip(batched, queries):
        assert_identical(got, sharded.union_candidates(query))


def test_empty_index_and_empty_batch():
    vectorized = DiscoveryIndex()
    rng = random.Random(0)
    queries = [make_relation("query", rng, "dom0")]
    assert vectorized.join_candidates_batch(queries) == [[]]
    assert vectorized.union_candidates_batch(queries) == [[]]
    assert vectorized.join_candidates_batch([]) == []
    assert vectorized.union_candidates_batch([]) == []
    # A query with no joinable columns inside an otherwise scoring batch.
    numeric_only = Relation(
        "numbers",
        {"metric": [float(i) for i in range(10)]},
        Schema.from_spec({"metric": NUMERIC}),
    )
    scalar, vec, lsh = build_indexes(make_corpus(rng, 10), join_threshold=0.1)
    mixed = [make_relation("query", rng, "dom0"), numeric_only]
    assert_join_batch_parity(scalar, vec, mixed)
    assert_join_batch_parity(scalar, lsh, mixed)
    assert vec.join_candidates_batch([numeric_only]) == [[]]


def test_weighted_dot_many_is_bitwise_stacked_weighted_dot():
    """The batched CSR kernel row-for-row equals the per-query kernel."""
    rng = random.Random(8)
    relations = make_corpus(rng, num_datasets=25)
    index = DiscoveryIndex(union_threshold=0.2)
    for relation in relations:
        index.register(relation)
    terms = index._terms
    idf = index.idf_model.idf()
    size = terms.capacity
    sketches = [
        column.tfidf.term_counts
        for profile in (
            index.profiles[name] for name in ("ds0", "ds3", "ds7", "ds0")
        )
        for column in profile.columns.values()
        if column.tfidf is not None
    ]
    batched = terms.weighted_dot_many(sketches, idf, size)
    assert batched.shape == (len(sketches), size)
    for row, term_counts in enumerate(sketches):
        solo = terms.weighted_dot(term_counts, idf, size)
        assert batched[row].tobytes() == solo.tobytes()
    assert terms.weighted_dot_many([], idf, size).shape == (0, size)
    # Mixed sketch lengths exercise the step-synchronised ragged tail.
    ragged = [sketches[0], {}, dict(list(sketches[1].items())[:1])]
    batched = terms.weighted_dot_many(ragged, idf, size)
    for row, term_counts in enumerate(ragged):
        assert batched[row].tobytes() == terms.weighted_dot(
            term_counts, idf, size
        ).tobytes()
    assert np.all(batched[1] == 0.0)


def test_weighted_dot_many_fused_norms_are_bitwise_sketch_norms():
    """``with_norms=True`` returns the exact per-sketch TF-IDF norms.

    The fused norm is a single ``bincount`` over the squared usage
    scales; it must be bit-equal to the solo expression the scalar path
    evaluates (``TfIdfSketch.norm``), and fusing it must not perturb the
    dot matrix by a single byte.
    """
    rng = random.Random(8)
    relations = make_corpus(rng, num_datasets=25)
    index = DiscoveryIndex(union_threshold=0.2)
    for relation in relations:
        index.register(relation)
    terms = index._terms
    idf = index.idf_model.idf()
    size = terms.capacity
    sketches = [
        column.tfidf.term_counts
        for profile in (
            index.profiles[name] for name in ("ds0", "ds3", "ds7", "ds0")
        )
        for column in profile.columns.values()
        if column.tfidf is not None
    ]
    # A sketch of purely unindexed terms: zero dot row, nonzero norm.
    sketches.append({"never_indexed_term": 3})
    sketches.append({})
    dots, norms = terms.weighted_dot_many(sketches, idf, size, with_norms=True)
    assert norms.shape == (len(sketches),)
    assert dots.tobytes() == terms.weighted_dot_many(sketches, idf, size).tobytes()
    for row, term_counts in enumerate(sketches):
        solo = math.sqrt(
            sum(
                (count * idf.get(term, 1.0)) ** 2
                for term, count in term_counts.items()
            )
        )
        assert struct.pack("<d", norms[row]) == struct.pack("<d", solo)
    assert np.all(dots[-2] == 0.0)
    assert norms[-2] > 0.0
    assert norms[-1] == 0.0
    empty_dots, empty_norms = terms.weighted_dot_many([], idf, size, with_norms=True)
    assert empty_dots.shape == (0, size)
    assert empty_norms.shape == (0,)
