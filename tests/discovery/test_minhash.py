"""Tests for MinHash sketches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import MinHasher, exact_jaccard
from repro.exceptions import DiscoveryError


def test_identical_columns_have_similarity_one():
    hasher = MinHasher(num_hashes=64)
    values = [f"key{i}" for i in range(50)]
    assert hasher.sketch(values).jaccard(hasher.sketch(values)) == 1.0


def test_disjoint_columns_have_near_zero_similarity():
    hasher = MinHasher(num_hashes=128)
    a = hasher.sketch([f"a{i}" for i in range(100)])
    b = hasher.sketch([f"b{i}" for i in range(100)])
    assert a.jaccard(b) < 0.1


def test_estimate_tracks_exact_jaccard():
    hasher = MinHasher(num_hashes=256, seed=3)
    left = [f"v{i}" for i in range(100)]
    right = [f"v{i}" for i in range(50, 150)]
    estimate = hasher.sketch(left).jaccard(hasher.sketch(right))
    exact = exact_jaccard(left, right)
    assert abs(estimate - exact) < 0.12


def test_empty_columns_give_zero():
    hasher = MinHasher()
    empty = hasher.sketch([])
    other = hasher.sketch(["a"])
    assert empty.jaccard(other) == 0.0
    assert empty.num_values == 0


def test_none_values_are_ignored():
    hasher = MinHasher()
    sketch = hasher.sketch(["a", None, "b"])
    assert sketch.num_values == 2


def test_sketch_is_deterministic_across_instances():
    values = [f"id{i}" for i in range(30)]
    first = MinHasher(num_hashes=32, seed=1).sketch(values)
    second = MinHasher(num_hashes=32, seed=1).sketch(values)
    assert first.signature == second.signature


def test_mismatched_widths_raise():
    a = MinHasher(num_hashes=16).sketch(["x"])
    b = MinHasher(num_hashes=32).sketch(["x"])
    with pytest.raises(DiscoveryError):
        a.jaccard(b)


def test_invalid_hasher():
    with pytest.raises(DiscoveryError):
        MinHasher(num_hashes=0)


def test_exact_jaccard_edge_cases():
    assert exact_jaccard([], ["a"]) == 0.0
    assert exact_jaccard(["a", "b"], ["a", "b"]) == 1.0
    assert exact_jaccard(["a"], ["b"]) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    left=st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=40),
    right=st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=40),
)
def test_jaccard_estimate_is_bounded(left, right):
    hasher = MinHasher(num_hashes=64)
    estimate = hasher.sketch(left).jaccard(hasher.sketch(right))
    assert 0.0 <= estimate <= 1.0


def test_batched_sketch_matches_per_value_reference():
    """The batched hasher must reproduce the original per-value signatures."""
    import hashlib

    import numpy as np

    from repro.discovery.minhash import _PRIME

    hasher = MinHasher(num_hashes=32, seed=5)
    values = [f"value{i}" for i in range(500)] + ["", "ü", "a b c"]
    distinct = {str(v) for v in values}
    reference_hashes = np.array(
        [
            int.from_bytes(
                hashlib.blake2b(v.encode("utf-8"), digest_size=8).digest(), "big"
            )
            % _PRIME
            for v in distinct
        ],
        dtype=np.int64,
    )
    table = (hasher._a[:, None] * reference_hashes[None, :] + hasher._b[:, None]) % _PRIME
    expected = tuple(int(v) for v in table.min(axis=1))
    assert hasher.sketch(values).signature == expected


def test_batched_sketch_chunking_is_invisible():
    hasher = MinHasher(num_hashes=16, seed=2)
    values = [f"v{i}" for i in range(50)]
    whole = hasher.sketch(values)
    original_chunk = MinHasher._CHUNK
    try:
        MinHasher._CHUNK = 7  # force many partial blocks
        chunked = hasher.sketch(values)
    finally:
        MinHasher._CHUNK = original_chunk
    assert chunked == whole
