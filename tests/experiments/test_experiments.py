"""Smoke + shape tests for the experiment drivers (scaled-down configurations)."""

import pytest

from repro.datasets import AirbnbSpec, CausalStudySpec, CorpusSpec
from repro.experiments import (
    AGENT,
    APM,
    AteExperimentConfig,
    FPM,
    Figure4Config,
    Figure5Config,
    Figure6Config,
    MECHANISMS,
    NON_PRIVATE,
    RAW,
    TPM,
    format_sweep,
    format_table,
    run_ate_experiment,
    run_figure4,
    run_figure5a,
    run_figure6,
    run_runtime_experiment,
)


def test_format_table_alignment():
    table = format_table(["a", "metric"], [["x", 1.23456], ["longer", 2.0]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.235" in table


def test_figure4_orderings():
    config = Figure4Config(
        corpus_spec=CorpusSpec(num_datasets=20, requester_rows=200, seed=0),
        time_budget_seconds=600.0,
    )
    result = run_figure4(config)
    assert set(result.results) == {"Mileena", "ARDA", "Novelty", "Auto-SK", "Vertex AI"}
    mileena = result.results["Mileena"]
    # Mileena finishes within budget and beats the feature-starved AutoML systems.
    assert mileena.finished_within_budget
    assert mileena.test_r2 > result.results["Auto-SK"].test_r2
    assert mileena.test_r2 > result.results["Vertex AI"].test_r2
    # ARDA and Vertex blow through the 10-minute budget.
    assert result.results["ARDA"].elapsed_seconds > result.time_budget_seconds
    assert result.results["Vertex AI"].elapsed_seconds > result.time_budget_seconds
    # Novelty-driven acquisition does not beat the task-driven search.
    assert mileena.test_r2 >= result.results["Novelty"].test_r2 - 0.05
    assert "Mileena" in result.format()


def test_figure5a_mechanism_ordering():
    config = Figure5Config(corpus_size=30, runs=2, requester_rows=250, epsilon=1.0, seed=3)
    result = run_figure5a(config)
    assert set(result.utilities) == set(MECHANISMS)
    for mechanism in MECHANISMS:
        assert len(result.utilities[mechanism]) == 2
    non_private = result.median_utility(NON_PRIVATE)
    fpm = result.median_utility(FPM)
    apm = result.median_utility(APM)
    tpm = result.median_utility(TPM)
    # The non-private search is an upper bound for every private mechanism,
    # and every private mechanism still finds enough signal to beat the
    # local-features-only baseline (~0.1-0.2 on this corpus).  The full
    # FPM-vs-APM/TPM gap of the paper shows up in the (b)/(c) sweeps where
    # the baselines' budgets collapse; panel (a) selection at eps=1 has high
    # run-to-run variance on this synthetic corpus (see EXPERIMENTS.md).
    assert non_private >= max(fpm, apm, tpm) - 0.1
    assert fpm > 0.1
    assert apm <= non_private + 1e-6
    assert tpm <= non_private + 1e-6
    assert "FPM" in result.format()
    assert "median_r2" in result.format()


def test_figure5_sweep_formatting():
    config = Figure5Config(corpus_size=12, runs=1, requester_rows=200, seed=2)
    sweep = {12: run_figure5a(config)}
    table = format_sweep(sweep, "corpus_size")
    assert "corpus_size" in table and "FPM" in table


def test_figure6_agent_transformations_win():
    config = Figure6Config(airbnb_spec=AirbnbSpec(num_listings=250, seed=0))
    result = run_figure6(config)
    assert set(result.scores) == {"Raw", "Embed", "Agent"}
    # Agent transformations dominate raw features for the linear model ...
    assert result.score(AGENT, "LR") > result.score(RAW, "LR") + 0.2
    # ... and with them linear regression is competitive with every other model.
    best_other = max(result.score(AGENT, model) for model in ("XGB", "ASK", "NN"))
    assert result.score(AGENT, "LR") >= best_other - 0.05
    assert "Agent" in result.format()


def test_runtime_experiment_sketch_path_is_flat():
    result = run_runtime_experiment(sizes=[500, 30_000])
    assert len(result.measurements) == 2
    small, large = result.measurements
    # The materialising path grows with relation size; the sketch path is
    # roughly constant, so at the larger size it is clearly faster.
    assert large.materialize_seconds > small.materialize_seconds
    assert large.sketch_seconds < large.materialize_seconds
    assert large.speedup > 1.0
    # Candidate evaluation from sketches stays in the milliseconds range.
    assert large.sketch_seconds < 0.25
    assert "speedup" in result.format()


def test_ate_experiment_reproduces_error_gap():
    config = AteExperimentConfig(
        study_spec=CausalStudySpec(num_students=15_000, seed=0), repetitions=3
    )
    result = run_ate_experiment(config)
    assert len(result.runs) == 3
    assert result.mediator_error_percent < result.backdoor_error_percent
    assert result.mediator_error_percent < 5.0
    assert result.backdoor_error_percent > 3.0
    assert "backdoor" in result.format()
