"""Tests for the agent framework: LLM heuristics, individual agents, pipeline."""

import numpy as np
import pytest

from repro.agents import (
    AgentTransformationPipeline,
    CoderAgent,
    DebuggerAgent,
    EDAAgent,
    HashingEmbedder,
    ReviewerAgent,
    SimulatedLLM,
    TransformationSuggestion,
    compile_draft,
    transforms,
)
from repro.agents.base import COUNT_ITEMS, DATE_TO_YEARS, EXTRACT_NUMBER, ONE_HOT
from repro.datasets import AirbnbSpec, generate_airbnb
from repro.exceptions import AgentError
from repro.ml import LinearRegression
from repro.relational import Relation


@pytest.fixture(scope="module")
def listings():
    return generate_airbnb(AirbnbSpec(num_listings=250, seed=0))


# -- transformation library -------------------------------------------------------

def test_extract_number():
    assert transforms.extract_number("52 m2") == 52.0
    assert transforms.extract_number("$1,299.50") == 1.0 or transforms.extract_number("1299.50") == 1299.5
    assert np.isnan(transforms.extract_number("no digits"))
    assert np.isnan(transforms.extract_number(None))


def test_date_to_years():
    assert transforms.date_to_years("2020-06-15") == pytest.approx(3.0)
    assert transforms.date_to_years("2013-01-01") > transforms.date_to_years("2020-01-01")
    assert np.isnan(transforms.date_to_years("not a date"))


def test_count_items_and_string_length():
    assert transforms.count_items("wifi,pool,gym") == 3.0
    assert transforms.count_items("") == 0.0
    assert transforms.count_items(None) == 0.0
    assert transforms.string_length("abc") == 3.0
    assert transforms.string_length(None) == 0.0


def test_log_transform():
    assert transforms.log_transform(0.0) == 0.0
    assert transforms.log_transform(np.e - 1) == pytest.approx(1.0)
    assert np.isnan(transforms.log_transform("text"))
    assert np.isnan(transforms.log_transform(-5.0))


def test_one_hot_helpers():
    vocabulary = transforms.one_hot_categories(["a", "b", "a", None])
    assert vocabulary[0] == "a"
    assert transforms.one_hot_indicator("a", "a") == 1.0
    assert transforms.one_hot_indicator("b", "a") == 0.0
    assert transforms.one_hot_indicator(None, "") == 1.0


# -- simulated LLM -------------------------------------------------------------------

def test_llm_suggests_date_parsing():
    llm = SimulatedLLM()
    suggestions = llm.suggest_transformations("host_since", ["2020-01-02", "2018-07-11"], 100)
    assert suggestions[0].kind == DATE_TO_YEARS


def test_llm_suggests_count_for_lists():
    llm = SimulatedLLM()
    suggestions = llm.suggest_transformations("amenities", ["wifi,pool", "gym,wifi"], 50)
    assert suggestions[0].kind == COUNT_ITEMS


def test_llm_suggests_extract_number_for_embedded_numbers():
    llm = SimulatedLLM()
    suggestions = llm.suggest_transformations("size_text", ["52 m2", "33 m2"], 80)
    assert suggestions[0].kind == EXTRACT_NUMBER


def test_llm_suggests_one_hot_for_low_cardinality():
    llm = SimulatedLLM()
    suggestions = llm.suggest_transformations("room_type", ["entire_home", "shared_room"], 3)
    assert suggestions[0].kind == ONE_HOT


def test_llm_empty_sample_returns_nothing():
    assert SimulatedLLM().suggest_transformations("c", [None, None], 0) == []


def test_llm_records_calls():
    llm = SimulatedLLM()
    llm.suggest_transformations("c", ["1 kg"], 30)
    suggestion = TransformationSuggestion("c", EXTRACT_NUMBER, "extract", "c_value")
    llm.write_code(suggestion)
    llm.review("extract", [1.0, 2.0])
    assert llm.calls["suggest"] == 1
    assert llm.calls["code"] == 1
    assert llm.calls["review"] == 1


# -- individual agents -----------------------------------------------------------------

def test_eda_agent_covers_messy_columns(listings):
    suggestions = EDAAgent().act(listings)
    columns = {suggestion.column for suggestion in suggestions}
    assert {"size_text", "host_since", "amenities", "room_type"} <= columns


def test_coder_and_debugger_produce_runnable_code():
    suggestion = TransformationSuggestion("size_text", EXTRACT_NUMBER, "extract size", "size_value")
    draft = CoderAgent().act(suggestion)
    executable = DebuggerAgent().act(draft, ["52 m2", "19 m2"])
    assert executable is not None
    assert executable.function(["77 m2"]) == [77.0]
    assert executable.attempts == 1


def test_debugger_fixes_buggy_first_draft():
    llm = SimulatedLLM(buggy_first_draft=True)
    suggestion = TransformationSuggestion("size_text", EXTRACT_NUMBER, "extract size", "size_value")
    draft = CoderAgent(llm=llm).act(suggestion)
    executable = DebuggerAgent(llm=llm).act(draft, ["52 m2"])
    assert executable is not None
    assert executable.attempts == 2
    assert llm.calls.get("fix", 0) >= 1


def test_debugger_gives_up_on_unfixable_code():
    class HopelessLLM(SimulatedLLM):
        def fix_code(self, source, error_message):
            return source  # never actually fixes anything

    from repro.agents.base import CodeDraft

    draft = CodeDraft(
        suggestion=TransformationSuggestion("c", EXTRACT_NUMBER, "x", "c_v"),
        function_name="transform",
        source="def transform(values):\n    raise RuntimeError('nope')\n",
    )
    assert DebuggerAgent(llm=HopelessLLM()).act(draft, ["a"]) is None


def test_compile_draft_requires_callable():
    with pytest.raises(AgentError):
        compile_draft("x = 1\n")


def test_reviewer_rejects_constant_output():
    suggestion = TransformationSuggestion("c", EXTRACT_NUMBER, "extract", "c_v")
    draft = CoderAgent().act(suggestion)
    executable = DebuggerAgent().act(draft, ["5 kg", "5 kg"])
    verdict = ReviewerAgent().act(executable, ["5 kg", "5 kg"])
    assert not verdict.accepted


def test_reviewer_rejects_mostly_invalid_output():
    suggestion = TransformationSuggestion("c", EXTRACT_NUMBER, "extract", "c_v")
    draft = CoderAgent().act(suggestion)
    executable = DebuggerAgent().act(draft, ["no digits", "none here"])
    verdict = ReviewerAgent().act(executable, ["no digits", "none here"])
    assert not verdict.accepted


def test_reviewer_accepts_useful_output():
    suggestion = TransformationSuggestion("c", EXTRACT_NUMBER, "extract", "c_v")
    draft = CoderAgent().act(suggestion)
    executable = DebuggerAgent().act(draft, ["5 kg", "9 kg"])
    verdict = ReviewerAgent().act(executable, ["5 kg", "9 kg"])
    assert verdict.accepted


# -- pipeline and embeddings ---------------------------------------------------------------

def test_pipeline_adds_numeric_features(listings):
    pipeline = AgentTransformationPipeline()
    transformed = pipeline.transform(listings)
    numeric = set(transformed.schema.numeric_names)
    assert "size_text_value" in numeric
    assert "host_since_years" in numeric
    assert "amenities_count" in numeric
    assert any(name.startswith("room_type=") for name in numeric)
    assert pipeline.last_report is not None
    assert pipeline.last_report.accepted


def test_pipeline_can_drop_raw_columns(listings):
    pipeline = AgentTransformationPipeline(keep_raw_columns=False)
    transformed = pipeline.transform(listings)
    assert "size_text" not in transformed.columns
    assert "price" in transformed.columns


def test_pipeline_transformation_unlocks_linear_signal(listings):
    """The Figure 6(b) story: transformations let linear regression shine."""
    raw_features = ["minimum_nights", "number_of_reviews"]
    raw_model = LinearRegression().fit(listings.numeric_matrix(raw_features), listings["price"])
    raw_r2 = raw_model.score(listings.numeric_matrix(raw_features), listings["price"])

    transformed = AgentTransformationPipeline().transform(listings)
    features = [name for name in transformed.schema.numeric_names if name != "price"]
    model = LinearRegression().fit(transformed.numeric_matrix(features), transformed["price"])
    transformed_r2 = model.score(transformed.numeric_matrix(features), transformed["price"])
    assert transformed_r2 > raw_r2 + 0.3
    assert transformed_r2 > 0.7


def test_hashing_embedder_shapes(listings):
    embedder = HashingEmbedder(dimensions=4)
    embedded = embedder.transform(listings)
    assert "room_type_emb0" in embedded.columns
    assert "room_type" not in embedded.columns
    matrix = embedder.embed_column(["wifi,pool", None, "wifi"])
    assert matrix.shape == (3, 4)
    assert matrix[1].sum() == 0.0
    assert matrix[0].sum() >= matrix[2].sum()


def test_embedder_is_worse_than_agents_for_linear_models(listings):
    embedded = HashingEmbedder(dimensions=6).transform(listings)
    embed_features = [name for name in embedded.schema.numeric_names if name != "price"]
    embed_model = LinearRegression().fit(embedded.numeric_matrix(embed_features), embedded["price"])
    embed_r2 = embed_model.score(embedded.numeric_matrix(embed_features), embedded["price"])

    transformed = AgentTransformationPipeline().transform(listings)
    agent_features = [name for name in transformed.schema.numeric_names if name != "price"]
    agent_model = LinearRegression().fit(
        transformed.numeric_matrix(agent_features), transformed["price"]
    )
    agent_r2 = agent_model.score(transformed.numeric_matrix(agent_features), transformed["price"])
    assert agent_r2 > embed_r2
