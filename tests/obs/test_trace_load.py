"""Roundtrip: TraceBuffer.export_jsonl → tools/trace_load.py → rendered tree."""

import sys
from pathlib import Path

import pytest

from repro.obs import Tracer, render_trace, span

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from trace_load import load_traces, main  # noqa: E402


@pytest.fixture
def tracer():
    return Tracer(sample_rate=1.0, slow_threshold_seconds=0.05)


def run_workload(tracer, requests: int = 3) -> None:
    for index in range(requests):
        with tracer.trace("request", request_id=index):
            with span("dispatch"):
                with span("compute", worker=index % 2):
                    pass
            with span("cache_store"):
                pass


def test_roundtrip_preserves_traces_and_renders(tracer, tmp_path):
    run_workload(tracer)
    originals = tracer.buffer.snapshot()
    path = tmp_path / "traces.jsonl"
    written = tracer.buffer.export_jsonl(path)
    assert written == sum(len(trace.records) for trace in originals)

    loaded = load_traces(path)
    assert len(loaded) == len(originals)
    by_id = {trace.trace_id: trace for trace in loaded}
    for original in originals:
        restored = by_id[original.trace_id]
        assert restored.name == original.name
        assert restored.sampled == original.sampled
        assert restored.slow == original.slow
        assert restored.duration == pytest.approx(original.duration)
        assert {record.span_id for record in restored.records} == {
            record.span_id for record in original.records
        }
        # The offline render matches the live render exactly.
        assert render_trace(restored) == render_trace(original)


def test_partial_trace_falls_back_to_longest_record(tracer, tmp_path):
    run_workload(tracer, requests=1)
    trace = tracer.buffer.snapshot()[0]
    path = tmp_path / "partial.jsonl"
    # Ship only the non-root records, as a truncated export would.
    import json

    with open(path, "w") as handle:
        for record in trace.records:
            if record.parent_id is None:
                continue
            row = record.as_dict()
            row["sampled"] = trace.sampled
            row["slow"] = trace.slow
            handle.write(json.dumps(row) + "\n")
    loaded = load_traces(path)
    assert len(loaded) == 1
    # dispatch wraps compute and cache_store, so it is the longest record.
    assert loaded[0].name == "dispatch"


def test_cli_renders_and_filters(tracer, tmp_path, capsys):
    run_workload(tracer)
    path = tmp_path / "traces.jsonl"
    tracer.buffer.export_jsonl(path)
    target = tracer.buffer.snapshot()[0].trace_id

    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 trace(s)" in out
    assert "request" in out and "compute" in out

    assert main([str(path), "--trace", target]) == 0
    out = capsys.readouterr().out
    assert "1 trace(s)" in out
    assert target in out

    assert main([str(path), "--slowest", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 trace(s)" in out


def test_cli_fails_on_empty_or_missing_trace(tracer, tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty)]) == 1
    assert "no span records" in capsys.readouterr().err

    run_workload(tracer)
    path = tmp_path / "traces.jsonl"
    tracer.buffer.export_jsonl(path)
    assert main([str(path), "--trace", "nope"]) == 1
    assert "not found" in capsys.readouterr().err
