"""MetricsHistory windowed reads and the SLO burn-rate engine (fake clock)."""

import pytest

from repro.obs import MetricsHistory, SloEngine, SloSpec, default_slos
from repro.obs.slo import LATENCY, OK, PAGE, RATIO, WARN
from repro.serving.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, value: float = 1000.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def history(registry, clock):
    return MetricsHistory(registry, capacity=8, now=clock)


class TestMetricsHistory:
    def test_requires_two_snapshots(self, history, registry, clock):
        assert history.window_pair(10.0) is None
        assert history.counter_delta("gateway.requests", 10.0) == 0
        history.tick()
        assert history.window_pair(10.0) is None
        clock.advance(5.0)
        registry.increment("gateway.requests", 3)
        history.tick()
        assert history.window_pair(10.0) is not None

    def test_counter_delta_and_rate(self, history, registry, clock):
        history.tick()
        clock.advance(10.0)
        registry.increment("gateway.requests", 30)
        history.tick()
        assert history.counter_delta("gateway.requests", 10.0) == 30
        assert history.counter_rate("gateway.requests", 10.0) == pytest.approx(3.0)

    def test_window_picks_closest_snapshot_to_far_edge(self, history, registry, clock):
        for step in range(4):
            registry.increment("gateway.requests", 10)
            history.tick()
            clock.advance(10.0)
        # Ticks at t=1000(10), 1010(20), 1020(30), 1030(40); a 20s window
        # from the newest (1030) reaches back to the tick at 1010.
        assert history.counter_delta("gateway.requests", 20.0) == 20

    def test_window_falls_back_to_oldest_snapshot(self, history, registry, clock):
        history.tick()
        clock.advance(5.0)
        registry.increment("gateway.requests", 7)
        history.tick()
        # Asking for a 300s window on 5s of history reports whole-life.
        assert history.counter_delta("gateway.requests", 300.0) == 7

    def test_ring_is_bounded(self, registry, clock):
        history = MetricsHistory(registry, capacity=3, now=clock)
        for _ in range(10):
            clock.advance(1.0)
            history.tick()
        assert len(history) == 3

    def test_capacity_floor(self, registry, clock):
        with pytest.raises(ValueError):
            MetricsHistory(registry, capacity=1, now=clock)

    def test_ratio_and_hit_rate(self, history, registry, clock):
        history.tick()
        clock.advance(10.0)
        registry.increment("gateway.failed", 1)
        registry.increment("gateway.requests", 4)
        registry.increment("gateway_cache.hits", 3)
        registry.increment("gateway_cache.misses", 1)
        history.tick()
        assert history.ratio(
            ("gateway.failed",), ("gateway.requests",), 10.0
        ) == pytest.approx(0.25)
        assert history.hit_rate("gateway_cache", 10.0) == pytest.approx(0.75)

    def test_ratio_without_denominator_events_is_none(self, history, clock):
        history.tick()
        clock.advance(10.0)
        history.tick()
        assert history.ratio(("gateway.failed",), ("gateway.requests",), 10.0) is None

    def test_histogram_window_deltas_old_observations_out(
        self, history, registry, clock
    ):
        registry.observe("gateway.service_seconds", 100.0)  # before the window
        history.tick()
        clock.advance(10.0)
        for _ in range(20):
            registry.observe("gateway.service_seconds", 0.3)
        history.tick()
        window = history.histogram_window("gateway.service_seconds", 10.0)
        assert window.count == 20
        assert window.seconds == pytest.approx(10.0)
        # The old 100s observation is outside the window, so the windowed
        # p95 reflects only the 0.3s burst.
        assert window.quantile(0.95) <= 0.5

    def test_histogram_window_absent_histogram_is_none(self, history, clock):
        history.tick()
        clock.advance(10.0)
        history.tick()
        assert history.histogram_window("never.observed", 10.0) is None

    def test_empty_window_quantile_is_zero(self, history, registry, clock):
        registry.observe("gateway.service_seconds", 0.3)
        history.tick()
        clock.advance(10.0)
        history.tick()
        window = history.histogram_window("gateway.service_seconds", 10.0)
        assert window.count == 0
        assert window.quantile(0.95) == 0.0


def ratio_spec(**overrides) -> SloSpec:
    spec = dict(
        name="error_ratio",
        kind=RATIO,
        threshold=0.05,
        numerators=("gateway.failed",),
        denominators=("gateway.requests",),
        fast_window_seconds=10.0,
        slow_window_seconds=30.0,
        warn_burn=1.0,
        page_burn=2.0,
        min_events=1,
    )
    spec.update(overrides)
    return SloSpec(**spec)


class TestSloSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="nope", threshold=1.0)

    def test_ratio_needs_counters(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind=RATIO, threshold=1.0)

    def test_latency_needs_histogram(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind=LATENCY, threshold=1.0)

    def test_duplicate_names_rejected(self, history):
        with pytest.raises(ValueError):
            SloEngine(history, specs=(ratio_spec(), ratio_spec()))

    def test_default_slos_are_valid(self):
        names = [spec.name for spec in default_slos()]
        assert names == ["error_ratio", "degraded_ratio", "latency_p95"]


class TestSloEngine:
    def test_idle_history_is_ok_not_breaching(self, history, registry):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        statuses = engine.evaluate()
        assert [status.state for status in statuses] == [OK]
        assert statuses[0].events == 0

    def test_healthy_traffic_stays_ok(self, history, registry, clock):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        history.tick()
        clock.advance(10.0)
        registry.increment("gateway.requests", 100)
        registry.increment("gateway.failed", 1)  # 1% < 5% threshold
        history.tick()
        statuses = engine.evaluate()
        assert statuses[0].state == OK
        assert statuses[0].slow_burn == pytest.approx(0.2)

    def test_sustained_burn_pages_and_counts_transition_once(
        self, history, registry, clock
    ):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        history.tick()
        for _ in range(4):
            clock.advance(10.0)
            registry.increment("gateway.requests", 10)
            registry.increment("gateway.failed", 2)  # 20% = burn 4.0
            history.tick()
        assert engine.evaluate()[0].state == PAGE
        assert engine.evaluate()[0].state == PAGE  # still paging
        counters = registry.snapshot()["counters"]
        assert counters["obs.slo.page"] == 1  # transition, not held state
        assert counters["obs.slo.evaluations"] == 2
        assert engine.page_active()

    def test_fast_spike_alone_warns_not_pages(self, history, registry, clock):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        history.tick()
        # 20s of clean traffic fills the slow window with health...
        for _ in range(2):
            clock.advance(10.0)
            registry.increment("gateway.requests", 100)
            history.tick()
        # ...then a spike of pure failures filling the whole fast window.
        clock.advance(10.0)
        registry.increment("gateway.requests", 10)
        registry.increment("gateway.failed", 10)
        history.tick()
        status = engine.evaluate()[0]
        assert status.fast_burn >= 2.0
        assert status.slow_burn < 2.0
        assert status.state == WARN

    def test_slow_budget_burn_warns(self, history, registry, clock):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        history.tick()
        for _ in range(3):
            clock.advance(10.0)
            registry.increment("gateway.requests", 100)
            registry.increment("gateway.failed", 7)  # 7% = burn 1.4: over budget
            history.tick()
        status = engine.evaluate()[0]
        assert status.state == WARN
        assert registry.snapshot()["counters"]["obs.slo.warn"] == 1

    def test_min_events_suppresses_thin_evidence(self, history, registry, clock):
        engine = SloEngine(
            history, specs=(ratio_spec(min_events=50),), metrics=registry
        )
        history.tick()
        clock.advance(30.0)
        registry.increment("gateway.requests", 2)
        registry.increment("gateway.failed", 2)  # 100% failure, but 2 events
        history.tick()
        assert engine.evaluate()[0].state == OK

    def test_recovery_returns_to_ok(self, history, registry, clock):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        history.tick()
        for _ in range(3):
            clock.advance(10.0)
            registry.increment("gateway.requests", 10)
            registry.increment("gateway.failed", 5)
            history.tick()
        assert engine.evaluate()[0].state == PAGE
        # 40s of clean traffic pushes the breach out of both windows.
        for _ in range(4):
            clock.advance(10.0)
            registry.increment("gateway.requests", 100)
            history.tick()
        assert engine.evaluate()[0].state == OK
        assert not engine.page_active()

    def test_latency_quantile_slo(self, history, registry, clock):
        spec = SloSpec(
            name="latency_p95",
            kind=LATENCY,
            threshold=0.5,
            histogram="gateway.service_seconds",
            quantile=0.95,
            fast_window_seconds=10.0,
            slow_window_seconds=30.0,
        )
        engine = SloEngine(history, specs=(spec,), metrics=registry)
        history.tick()
        for _ in range(3):
            clock.advance(10.0)
            for _ in range(10):
                registry.observe("gateway.service_seconds", 3.0)  # burn 6.0
            history.tick()
        status = engine.evaluate()[0]
        assert status.state == PAGE
        assert status.slow_value > 0.5

    def test_publishes_per_slo_gauges(self, history, registry):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        engine.evaluate()
        gauges = registry.snapshot()["gauges"]
        assert gauges["obs.slo.error_ratio.state"] == 0
        assert "obs.slo.error_ratio.burn_fast" in gauges
        assert "obs.slo.error_ratio.burn_slow" in gauges

    def test_last_is_retained(self, history, registry):
        engine = SloEngine(history, specs=(ratio_spec(),), metrics=registry)
        assert engine.last == ()
        result = engine.evaluate()
        assert engine.last == result
