"""Acceptance tests for the HTTP ops server.

The ISSUE-level contract: a gateway started with ``ops_port`` serves a
``/metrics`` exposition the validating parser accepts, ``/health`` flips
200 → 503 when an SLO pages (or the dispatch breaker opens), histogram
exemplars resolve to retained traces through ``/traces/<id>``, and a
scrape storm during a churning workload never perturbs the request path.
"""

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.core import SearchRequest, WallClock
from repro.obs import parse_openmetrics
from repro.obs.server import OPENMETRICS_CONTENT_TYPE
from repro.relational import KEY, NUMERIC, Relation, Schema
from repro.serving import Gateway, GatewayConfig

_SCHEMA = Schema.from_spec({"k": KEY, "y": NUMERIC})
_TRAIN = Relation("train", {"k": ["a", "b", "c"], "y": [1.0, 2.0, 3.0]}, _SCHEMA)
_TEST = Relation("test", {"k": ["d", "e"], "y": [4.0, 5.0]}, _SCHEMA)


class _StubCorpus:
    epoch = 0


class StubPlatform:
    """Duck-typed platform: instant (or delayed, or failing) searches."""

    def __init__(self, delay: float = 0.0):
        self.clock = WallClock()
        self.metrics = None
        self.cache = None
        self.corpus = _StubCorpus()
        self.delay = delay
        self.fail = False

    def search(self, request, train_final_model=True):
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("injected platform failure")
        return request.max_augmentations


def make_request(**overrides) -> SearchRequest:
    defaults = dict(train=_TRAIN, test=_TEST, target="y", max_augmentations=2)
    defaults.update(overrides)
    return SearchRequest(**defaults)


def ops_config(**overrides) -> GatewayConfig:
    defaults = dict(
        max_workers=2,
        cache_results=False,
        cache_proxy_scores=False,
        ops_port=0,
        trace_sample_rate=1.0,
        slow_trace_seconds=0.0,
        retry_max_attempts=1,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def fetch(url: str) -> tuple[int, str, str]:
    """(status, body, content type); HTTP errors return, not raise."""
    try:
        with urlopen(url, timeout=10.0) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""),
            )
    except HTTPError as error:
        return error.code, error.read().decode("utf-8"), ""


class TestEndpoints:
    def test_metrics_is_parseable_openmetrics(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            responses = gateway.run_many([make_request() for _ in range(5)])
            assert all(response.ok for response in responses)
            status, body, content_type = fetch(f"{gateway.ops_server.url}/metrics")
        assert status == 200
        assert content_type == OPENMETRICS_CONTENT_TYPE
        families = parse_openmetrics(body)
        assert families["gateway_requests"]["samples"][
            ("gateway_requests_total", ())
        ] == 5
        assert families["gateway_requests"]["help"] != "(no catalog entry)"
        assert "obs_slo_error_ratio_state" in families
        assert families["ops_scrapes"]["type"] == "counter"

    def test_health_ok_while_healthy(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            gateway.run_many([make_request() for _ in range(4)])
            status, body, _ = fetch(f"{gateway.ops_server.url}/health")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["paging_slos"] == []
        assert payload["breaker_open"] is False

    def test_health_flips_503_when_error_slo_pages(self):
        platform = StubPlatform()
        with Gateway(platform, ops_config()) as gateway:
            base = gateway.ops_server.url
            gateway.run_many([make_request() for _ in range(3)])
            assert fetch(f"{base}/health")[0] == 200

            platform.fail = True
            failed = gateway.run_many([make_request() for _ in range(12)])
            assert not any(response.ok for response in failed)
            time.sleep(0.02)  # distinct tick timestamp for the new window edge

            status, body, _ = fetch(f"{base}/health")
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == "unavailable"
            assert "error_ratio" in payload["paging_slos"]
            page_count = gateway.metrics.counter_value("obs.slo.page")
            assert page_count >= 1

    def test_health_503_when_breaker_open(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            gateway.run_many([make_request()])
            gateway.metrics.set_gauge("gateway.breaker.state", 2)
            status, body, _ = fetch(f"{gateway.ops_server.url}/health")
        assert status == 503
        assert json.loads(body)["breaker_open"] is True

    def test_exemplar_resolves_to_retained_trace(self):
        # 60ms searches land in a slow-ish service bucket; sample_rate=1
        # plus slow_trace_seconds=0 retains every trace.
        with Gateway(StubPlatform(delay=0.06), ops_config()) as gateway:
            gateway.run_many([make_request() for _ in range(3)])
            base = gateway.ops_server.url
            _, body, _ = fetch(f"{base}/metrics")
            families = parse_openmetrics(body)
            exemplars = families["gateway_service_seconds"]["exemplars"]
            assert exemplars, "armed ops server must capture service exemplars"
            # Pick the exemplar on the slowest populated bucket.
            (name, labels), (exemplar_labels, value) = max(
                exemplars.items(), key=lambda item: item[1][1]
            )
            assert value >= 0.06
            trace_id = dict(exemplar_labels)["trace_id"]

            status, detail_body, _ = fetch(f"{base}/traces/{trace_id}")
            assert status == 200
            detail = json.loads(detail_body)
            assert detail["trace_id"] == trace_id
            assert detail["records"], "exemplar trace must retain span records"
            assert "request" in detail["rendered"]

    def test_unknown_trace_is_404(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            status, body, _ = fetch(f"{gateway.ops_server.url}/traces/deadbeef")
        assert status == 404
        assert "not retained" in json.loads(body)["error"]

    def test_unknown_path_is_404(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            status, _, _ = fetch(f"{gateway.ops_server.url}/nope")
        assert status == 404

    def test_ops_slo_traces_endpoints(self):
        with Gateway(StubPlatform(), ops_config()) as gateway:
            gateway.run_many([make_request() for _ in range(2)])
            base = gateway.ops_server.url
            status, report, _ = fetch(f"{base}/ops")
            assert status == 200
            assert "gateway ops report" in report

            status, body, _ = fetch(f"{base}/slo")
            assert status == 200
            states = {slo["name"]: slo["state"] for slo in json.loads(body)["slo"]}
            assert set(states) == {"error_ratio", "degraded_ratio", "latency_p95"}

            status, body, _ = fetch(f"{base}/traces")
            assert status == 200
            index = json.loads(body)
            assert len(index["traces"]) == 2

    def test_ops_server_absent_without_ops_port(self):
        config = GatewayConfig(
            max_workers=1, cache_results=False, cache_proxy_scores=False
        )
        with Gateway(StubPlatform(), config) as gateway:
            assert gateway.ops_server is None

    def test_server_stops_with_gateway(self):
        gateway = Gateway(StubPlatform(), ops_config())
        url = gateway.ops_server.url
        assert fetch(f"{url}/health")[0] == 200
        gateway.shutdown()
        with pytest.raises(OSError):
            urlopen(f"{url}/health", timeout=0.5)


class TestScrapeStorm:
    def test_concurrent_scrapes_never_perturb_the_request_path(self):
        """8 scrape threads hammer /metrics and /health through a churning
        workload: every scrape parses, counters are monotone within each
        thread, no handler errors fire, and the request traces contain
        exactly the same span names as an unscraped request."""
        platform = StubPlatform(delay=0.002)
        with Gateway(platform, ops_config(max_workers=4)) as gateway:
            base = gateway.ops_server.url
            # Baseline: span names of one request with no scrapers running.
            gateway.run_many([make_request()])
            baseline_names = {
                record.name
                for trace in gateway.tracer.buffer.snapshot()
                for record in trace.records
            }

            stop = threading.Event()
            errors: list[Exception] = []

            def scraper(index: int) -> None:
                path = "/metrics" if index % 2 == 0 else "/health"
                last_requests = 0.0
                try:
                    while not stop.is_set():
                        status, body, _ = fetch(f"{base}{path}")
                        if path == "/metrics":
                            assert status == 200
                            families = parse_openmetrics(body)
                            total = families["gateway_requests"]["samples"][
                                ("gateway_requests_total", ())
                            ]
                            assert total >= last_requests, "counter went backwards"
                            last_requests = total
                        else:
                            assert status in (200, 503)
                            json.loads(body)
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=scraper, args=(index,), daemon=True)
                for index in range(8)
            ]
            for thread in threads:
                thread.start()

            batches = 6
            per_batch = 8
            for _ in range(batches):
                responses = gateway.run_many(
                    [make_request() for _ in range(per_batch)]
                )
                assert all(response.ok for response in responses)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

            assert errors == []
            metrics = gateway.metrics
            assert metrics.counter_value("ops.http.errors") == 0
            assert metrics.counter_value("ops.scrapes") > 0
            # Every admitted request finished exactly one root span; the
            # scrape storm added none.
            expected = 1 + batches * per_batch
            assert metrics.counter_value("trace.finished") == expected
            assert metrics.counter_value("gateway.requests") == expected
            storm_names = {
                record.name
                for trace in gateway.tracer.buffer.snapshot()
                for record in trace.records
            }
            assert storm_names == baseline_names
            # The final exposition is still internally consistent.
            _, body, _ = fetch(f"{base}/metrics")
            parse_openmetrics(body)
