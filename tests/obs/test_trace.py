"""Unit tests for the tracing layer: spans, sampling, buffer, stitching."""

import json
import random
import threading
import time

import pytest

from repro.obs import (
    CompletedTrace,
    RemoteTrace,
    SpanRecord,
    TraceBuffer,
    Tracer,
    attach_records,
    current_span,
    render_trace,
    span,
)


def _record(trace_id="t", span_id="s", parent_id=None, name="x", start=0.0, duration=0.1):
    return SpanRecord(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start=start,
        duration=duration,
    )


class TestSpanContext:
    def test_span_without_trace_is_noop(self):
        before = current_span()
        with span("anything", key="value") as noop:
            noop.annotate(more=1)
            assert current_span() is before is None

    def test_nested_spans_share_trace_and_link_parents(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("request") as root:
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner", detail="yes") as inner:
                    assert current_span() is inner
            assert current_span() is root
        records = {record.name: record for record in root.trace.records}
        assert set(records) == {"request", "outer", "inner"}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id == root.span_id
        assert records["request"].parent_id is None
        assert records["inner"].attrs == {"detail": "yes"}
        assert len({record.trace_id for record in records.values()}) == 1

    def test_exception_annotates_error_and_propagates(self):
        tracer = Tracer(sample_rate=1.0)
        with pytest.raises(ValueError):
            with tracer.trace("request") as root:
                with span("failing"):
                    raise ValueError("boom")
        records = {record.name: record for record in root.trace.records}
        assert records["failing"].attrs["error"] == "ValueError"
        assert records["request"].attrs["error"] == "ValueError"
        assert current_span() is None

    def test_threads_do_not_inherit_spans(self):
        tracer = Tracer(sample_rate=1.0)
        seen = []
        with tracer.trace("request"):
            worker = threading.Thread(target=lambda: seen.append(current_span()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestTracerRetention:
    def test_sample_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)

    def test_sampled_trace_is_retained(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("request"):
            pass
        assert len(tracer.buffer) == 1
        assert tracer.buffer.snapshot()[0].sampled

    def test_unsampled_fast_trace_is_dropped(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_seconds=60.0)
        with tracer.trace("request"):
            pass
        assert len(tracer.buffer) == 0

    def test_slow_trace_retained_even_when_unsampled(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_seconds=0.0)
        with tracer.trace("request"):
            time.sleep(0.001)
        [trace] = tracer.buffer.snapshot()
        assert trace.slow and not trace.sampled

    def test_retention_counters(self):
        from repro.serving.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        tracer = Tracer(
            sample_rate=0.5,
            slow_threshold_seconds=60.0,
            metrics=metrics,
            rng=random.Random(7),
        )
        for _ in range(40):
            with tracer.trace("request"):
                pass
        counters = metrics.snapshot()["counters"]
        assert counters["trace.finished"] == 40
        assert counters["trace.recorded"] == len(tracer.buffer)
        assert 0 < counters["trace.recorded"] < 40

    def test_buffer_capacity_bounds_memory(self):
        tracer = Tracer(sample_rate=1.0, buffer=TraceBuffer(capacity=3))
        for index in range(10):
            with tracer.trace("request", index=index):
                pass
        kept = tracer.buffer.snapshot()
        assert len(kept) == 3
        assert [trace.attrs["index"] for trace in kept] == [7, 8, 9]


class TestTraceBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_slowest_orders_by_duration(self):
        buffer = TraceBuffer()
        for duration in (0.2, 0.9, 0.1):
            buffer.add(
                CompletedTrace(
                    trace_id=f"t{duration}",
                    name="request",
                    start=0.0,
                    duration=duration,
                    sampled=True,
                    slow=False,
                    records=(),
                )
            )
        slowest = buffer.slowest(2)
        assert [trace.duration for trace in slowest] == [0.9, 0.2]

    def test_export_jsonl_roundtrips(self, tmp_path):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("request"):
            with span("child", epoch=3):
                pass
        path = tmp_path / "traces.jsonl"
        written = tracer.buffer.export_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert written == len(rows) == 2
        by_name = {row["name"]: row for row in rows}
        assert by_name["child"]["attrs"] == {"epoch": 3}
        assert by_name["child"]["parent_id"] == by_name["request"]["span_id"]
        assert all(row["sampled"] for row in rows)


class TestRemoteStitching:
    def test_remote_trace_without_ref_is_noop(self):
        remote = RemoteTrace(None, "replica")
        with remote:
            remote.annotate(ignored=True)
            assert current_span() is None
        assert remote.records == ()

    def test_remote_records_root_at_shipped_parent(self):
        with RemoteTrace(("abc", "parent-span"), "replica", worker=1) as remote:
            with span("replica.compute"):
                pass
        names = {record.name: record for record in remote.records}
        assert set(names) == {"replica", "replica.compute"}
        assert names["replica"].parent_id == "parent-span"
        assert names["replica"].trace_id == "abc"
        assert names["replica.compute"].parent_id == names["replica"].span_id

    def test_attach_records_extends_current_trace(self):
        tracer = Tracer(sample_rate=1.0)
        foreign = (_record(name="replica.compute"),)
        with tracer.trace("request") as root:
            assert attach_records(foreign)
        assert foreign[0] in root.trace.records

    def test_attach_records_without_trace_is_refused(self):
        assert not attach_records((_record(),))


class TestRenderTrace:
    def test_orphan_records_are_promoted_not_dropped(self):
        trace = CompletedTrace(
            trace_id="t",
            name="request",
            start=0.0,
            duration=0.5,
            sampled=True,
            slow=True,
            records=(
                _record(span_id="root", name="request"),
                _record(span_id="lost", parent_id="never-shipped", name="replica.compute"),
            ),
        )
        rendered = render_trace(trace)
        assert "replica.compute" in rendered
        assert "slow" in rendered
