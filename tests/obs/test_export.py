"""OpenMetrics exposition: rendering, parsing, sanitization, exemplars."""

import pytest

from repro.obs import (
    OpenMetricsParseError,
    Tracer,
    parse_openmetrics,
    render_openmetrics,
    sanitize_name,
)
from repro.obs.export import FALLBACK_HELP, VALID_NAME, help_for, load_help_catalog
from repro.serving.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.increment("gateway.requests", 7)
    registry.increment("gateway.failed", 2)
    registry.set_gauge("gateway.pending", 3.0)
    for value in (0.004, 0.04, 0.4, 4.0, 400.0):
        registry.observe("gateway.service_seconds", value)
    return registry


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("gateway.breaker.state") == "gateway_breaker_state"

    def test_arbitrary_illegal_characters(self):
        assert sanitize_name("a b-c/d") == "a_b_c_d"

    def test_leading_digit_gains_underscore(self):
        assert sanitize_name("9lives") == "_9lives"

    def test_empty_name(self):
        assert sanitize_name("") == "_"

    def test_results_are_always_legal(self):
        for ugly in ("x.y", "..", "3.14", "per-cent%", "ünïcode"):
            assert VALID_NAME.match(sanitize_name(ugly))


class TestRenderOpenMetrics:
    def test_round_trips_through_the_validating_parser(self):
        text = render_openmetrics(populated_registry())
        families = parse_openmetrics(text)
        assert families["gateway_requests"]["type"] == "counter"
        assert families["gateway_requests"]["samples"][
            ("gateway_requests_total", ())
        ] == 7
        assert families["gateway_pending"]["type"] == "gauge"
        assert families["gateway_pending"]["samples"][("gateway_pending", ())] == 3.0
        assert families["gateway_service_seconds"]["type"] == "histogram"

    def test_is_deterministic_and_eof_terminated(self):
        registry = populated_registry()
        text = render_openmetrics(registry)
        assert text == render_openmetrics(registry)
        assert text.endswith("# EOF\n")

    def test_catalogued_metrics_carry_catalog_help(self):
        text = render_openmetrics(populated_registry())
        families = parse_openmetrics(text)
        for family in ("gateway_requests", "gateway_pending", "gateway_service_seconds"):
            assert families[family]["help"] != FALLBACK_HELP

    def test_uncatalogued_metric_falls_back_to_placeholder_help(self):
        registry = MetricsRegistry()
        registry.increment("not.in.any.catalog")
        families = parse_openmetrics(render_openmetrics(registry))
        assert families["not_in_any_catalog"]["help"] == FALLBACK_HELP

    def test_histogram_buckets_are_cumulative_and_match_count(self):
        text = render_openmetrics(populated_registry())
        families = parse_openmetrics(text)
        family = families["gateway_service_seconds"]
        buckets = [
            value
            for (name, _), value in family["samples"].items()
            if name == "gateway_service_seconds_bucket"
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == family["samples"][("gateway_service_seconds_count", ())]
        assert family["samples"][("gateway_service_seconds_sum", ())] == pytest.approx(
            0.004 + 0.04 + 0.4 + 4.0 + 400.0
        )

    def test_matches_registry_snapshot_exactly(self):
        """The exposition and ``snapshot()`` describe the same state."""
        registry = populated_registry()
        snapshot = registry.snapshot()
        families = parse_openmetrics(render_openmetrics(registry))
        for name, value in snapshot["counters"].items():
            sanitized = sanitize_name(name)
            assert families[sanitized]["samples"][(f"{sanitized}_total", ())] == value
        for name, value in snapshot["gauges"].items():
            sanitized = sanitize_name(name)
            assert families[sanitized]["samples"][(sanitized, ())] == value
        for name, state in snapshot["histograms"].items():
            sanitized = sanitize_name(name)
            samples = families[sanitized]["samples"]
            assert samples[(f"{sanitized}_count", ())] == state["count"]
            assert samples[(f"{sanitized}_sum", ())] == pytest.approx(state["sum"])
            cumulative = 0
            bucket_values = []
            for count in state["bucket_counts"]:
                cumulative += count
                bucket_values.append(cumulative)
            rendered = [
                value
                for (sample_name, _), value in samples.items()
                if sample_name == f"{sanitized}_bucket"
            ]
            assert rendered == bucket_values


class TestSnapshotBuckets:
    def test_snapshot_exposes_raw_bucket_counts(self):
        registry = populated_registry()
        state = registry.snapshot()["histograms"]["gateway.service_seconds"]
        assert len(state["bucket_counts"]) == len(state["buckets"]) + 1
        assert sum(state["bucket_counts"]) == state["count"] == 5

    def test_render_and_exposition_agree_on_percentiles_source(self):
        """``render()`` (summary) and the exposition (raw buckets) must be
        two views of one locked capture, not two reads."""
        registry = populated_registry()
        state = registry.snapshot()["histograms"]["gateway.service_seconds"]
        summary = registry.histogram("gateway.service_seconds").summary()
        assert state["count"] == summary["count"]
        assert state["sum"] == pytest.approx(summary["sum"])
        assert state["p95"] == pytest.approx(summary["p95"])


class TestExemplars:
    def test_disarmed_histogram_renders_no_exemplars(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        assert families["gateway_service_seconds"]["exemplars"] == {}

    def test_armed_histogram_captures_trace_id_per_bucket(self):
        registry = MetricsRegistry()
        registry.arm_exemplars()
        tracer = Tracer(sample_rate=1.0, metrics=registry)
        with tracer.trace("request") as root:
            registry.observe("gateway.service_seconds", 0.3)
            trace_id = root.trace.trace_id
        families = parse_openmetrics(render_openmetrics(registry))
        exemplars = families["gateway_service_seconds"]["exemplars"]
        assert len(exemplars) == 1
        (key, (labels, value)) = next(iter(exemplars.items()))
        assert key[0] == "gateway_service_seconds_bucket"
        assert dict(labels)["trace_id"] == trace_id
        assert value == pytest.approx(0.3)

    def test_observation_outside_a_span_captures_nothing(self):
        registry = MetricsRegistry()
        registry.arm_exemplars()
        registry.observe("gateway.service_seconds", 0.3)
        families = parse_openmetrics(render_openmetrics(registry))
        assert families["gateway_service_seconds"]["exemplars"] == {}

    def test_arming_is_retroactive_and_sticky(self):
        registry = MetricsRegistry()
        before = registry.histogram("existing.seconds")
        registry.arm_exemplars()
        after = registry.histogram("created.later.seconds")
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("request"):
            before.observe(0.1)
            after.observe(0.2)
        assert registry.snapshot()["histograms"]["existing.seconds"]["exemplars"]
        assert registry.snapshot()["histograms"]["created.later.seconds"]["exemplars"]


class TestHelpCatalog:
    def test_default_catalog_loads_rows(self):
        catalog = load_help_catalog()
        assert catalog
        assert help_for("gateway.requests", catalog)

    def test_placeholder_rows_match_concrete_names(self):
        catalog = load_help_catalog()
        assert help_for("gateway.backend.process.queue_depth", catalog)
        assert help_for("obs.slo.error_ratio.state", catalog)

    def test_missing_file_yields_empty_catalog(self, tmp_path):
        assert load_help_catalog(tmp_path / "absent.md") == ()


class TestParserRejects:
    def test_missing_eof(self):
        with pytest.raises(OpenMetricsParseError, match="EOF"):
            parse_openmetrics("# HELP x h\n# TYPE x counter\nx_total 1\n")

    def test_blank_line(self):
        with pytest.raises(OpenMetricsParseError, match="blank"):
            parse_openmetrics("# HELP x h\n# TYPE x counter\n\nx_total 1\n# EOF\n")

    def test_sample_outside_any_family(self):
        with pytest.raises(OpenMetricsParseError, match="outside"):
            parse_openmetrics("orphan_total 1\n# EOF\n")

    def test_type_without_help(self):
        with pytest.raises(OpenMetricsParseError, match="HELP"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n# EOF\n")

    def test_duplicate_family(self):
        text = (
            "# HELP x h\n# TYPE x counter\nx_total 1\n"
            "# HELP x h\n# TYPE x counter\nx_total 2\n# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="duplicate family"):
            parse_openmetrics(text)

    def test_negative_counter(self):
        with pytest.raises(OpenMetricsParseError, match="negative"):
            parse_openmetrics("# HELP x h\n# TYPE x counter\nx_total -1\n# EOF\n")

    def test_wrong_suffix_for_type(self):
        with pytest.raises(OpenMetricsParseError, match="does not belong"):
            parse_openmetrics("# HELP x h\n# TYPE x counter\nx 1\n# EOF\n")

    def test_non_monotone_buckets(self):
        text = (
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\nh_count 3\n# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="decreases"):
            parse_openmetrics(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\nh_count 4\n# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="_count"):
            parse_openmetrics(text)

    def test_malformed_sample_line(self):
        with pytest.raises(OpenMetricsParseError, match="malformed"):
            parse_openmetrics("# HELP x h\n# TYPE x counter\nx_total one\n# EOF\n")
