"""The replicated backend: read scaling over WAL shipping, end to end.

Follower processes warm-start from the snapshot chain and tail the live
WAL; the gateway keeps mutations on the primary and round-robins reads.
The contract mirrors the backend parity suite: whatever the topology
does internally (catch-up, respawn, primary fallback), responses are
bit-identical to a flat single-process search at the same corpus state.
"""

import numpy as np
import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import ReplicationError
from repro.faults import FaultPlan, armed, disarm
from repro.relational import Relation
from repro.serving import Gateway, GatewayConfig

_SPEC = CorpusSpec(num_datasets=14, requester_rows=110, provider_rows=110, seed=17)
INITIAL = 8


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="module")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


def fresh_platform(corpus, upto=INITIAL, **kwargs):
    platform = Mileena.sharded(num_shards=2, **kwargs)
    for relation in corpus.providers[:upto]:
        platform.register_dataset(relation)
    return platform


def result_identity(result):
    report = result.final_report
    return (
        tuple((c.kind, c.dataset, c.join_key) for c in result.plan.candidates),
        result.proxy_test_r2,
        report.model.model_.intercept,
        report.model.model_.coefficients.tobytes(),
    )


def distinct_request(corpus, index):
    """A request with a unique requester fingerprint (defeats every cache)."""
    perturbed = np.asarray(corpus.train.column("local_a"), dtype=np.float64) + (
        1e-9 * (index + 1)
    )
    train = Relation(
        corpus.train.name,
        {
            name: perturbed if name == "local_a" else corpus.train.column(name)
            for name in corpus.train.schema.names
        },
        corpus.train.schema,
    )
    return SearchRequest(
        train=train, test=corpus.test, target=corpus.target, max_augmentations=2
    )


def replicated_config(tmp_path, **overrides):
    defaults = dict(
        backend="replicated",
        snapshot_dir=str(tmp_path),
        max_workers=2,
        follower_count=2,
        follower_poll_seconds=0.005,
        snapshot_every_mutations=4,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def test_replicated_backend_requires_durable_state(corpus):
    platform = fresh_platform(corpus)
    with pytest.raises(ReplicationError, match="snapshot_dir"):
        Gateway(platform, GatewayConfig(backend="replicated"))


def test_reads_are_bit_identical_under_churn(tmp_path, corpus, request_for):
    """Replicated reads match a flat search before and after mutations that
    cross a snapshot-cadence seal."""
    expected_initial = result_identity(fresh_platform(corpus).search(request_for))
    expected_grown = result_identity(
        fresh_platform(corpus, upto=14).search(request_for)
    )

    platform = fresh_platform(corpus)
    with Gateway(platform, replicated_config(tmp_path)) as gateway:
        first = gateway.run_many([request_for])[0]
        assert first.ok, first.error
        assert result_identity(first.result) == expected_initial

        for relation in corpus.providers[INITIAL:14]:  # crosses the cadence
            platform.register_dataset(relation)
        second = gateway.run_many([request_for])[0]
        assert second.ok, second.error
        assert result_identity(second.result) == expected_grown

        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("replication.reads", 0) >= 2
        assert counters.get("replication.segments_sealed", 0) >= 1
        assert gateway.metrics.snapshot()["gauges"]["replication.followers"] == 2


def test_distinct_reads_fan_out_across_followers(tmp_path, corpus):
    requests = [distinct_request(corpus, index) for index in range(4)]
    platform = fresh_platform(corpus)
    with Gateway(platform, replicated_config(tmp_path)) as gateway:
        responses = gateway.run_many(requests)
        assert all(response.ok for response in responses), [
            response.error for response in responses
        ]
        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("replication.reads", 0) >= 4
        gauges = gateway.metrics.snapshot()["gauges"]
        # Round-robin: both followers served reads and reported their lag.
        assert "replication.follower.0.lag" in gauges
        assert "replication.follower.1.lag" in gauges


def test_follower_death_respawns_and_redispatches(tmp_path, corpus, request_for):
    """A follower killed while holding the read: its breaker records the
    failure, the process respawns, and a sibling serves the redispatch —
    the caller sees the full-fidelity answer."""
    expected = result_identity(fresh_platform(corpus).search(request_for))
    platform = fresh_platform(corpus)
    plan = FaultPlan(seed=7).crash("follower.dispatch", on_hit=1)
    with Gateway(platform, replicated_config(tmp_path)) as gateway:
        with armed(plan) as injector:
            response = gateway.run_many([request_for])[0]
        assert response.ok, response.error
        assert not response.degraded
        assert result_identity(response.result) == expected
        assert injector.fired == [("follower.dispatch", 1, "crash")]
        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("replication.follower_restarts", 0) >= 1
        assert counters.get("replication.redispatches", 0) >= 1

        # The healed topology still serves correct reads.
        follow_up = gateway.run_many([request_for])[0]
        assert follow_up.ok and result_identity(follow_up.result) == expected


def test_invisible_wal_record_degrades_to_primary_compute(
    tmp_path, corpus, request_for
):
    """A WAL append that never reaches the disk (injected zero-length
    write): followers can never see that epoch, report ``stale``, and the
    primary recomputes locally — the read stays correct throughout."""
    expected = result_identity(fresh_platform(corpus, upto=9).search(request_for))
    platform = fresh_platform(corpus)
    config = replicated_config(
        tmp_path,
        follower_count=1,
        follower_catchup_timeout_seconds=0.1,
        snapshot_every_mutations=50,
    )
    with Gateway(platform, config) as gateway:
        plan = FaultPlan(seed=7).truncate("wal.append", fraction=0.0, on_hit=1)
        with armed(plan):
            platform.register_dataset(corpus.providers[8])  # journaled nowhere
        response = gateway.run_many([request_for])[0]
        assert response.ok, response.error
        assert not response.degraded  # full fidelity, computed on the primary
        assert result_identity(response.result) == expected
        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("replication.stale_reads", 0) >= 1
        assert counters.get("replication.primary_fallbacks", 0) >= 1
