"""Tests for the concurrent serving gateway."""

import threading

import pytest

from repro.core import Mileena, SearchRequest, WallClock
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import AdmissionError
from repro.serving import Gateway, GatewayConfig
from repro.serving.gateway import EXPIRED, FAILED, OK, REJECTED


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(num_datasets=14, requester_rows=200, seed=1))


@pytest.fixture(scope="module")
def platform(corpus):
    platform = Mileena()
    for relation in corpus.providers:
        platform.register_dataset(relation)
    return platform


def make_request(corpus, **overrides):
    defaults = dict(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=3,
    )
    defaults.update(overrides)
    return SearchRequest(**defaults)


class _StubCorpus:
    epoch = 0


class BlockingPlatform:
    """A platform stub whose search blocks until released (for queue tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.clock = WallClock()
        self.metrics = None
        self.cache = None
        self.corpus = _StubCorpus()
        self.calls = 0

    def search(self, request, train_final_model=True):
        self.calls += 1
        if not self.release.wait(timeout=10.0):
            raise TimeoutError("blocking platform was never released")
        return request.max_augmentations


class FailingPlatform(BlockingPlatform):
    def search(self, request, train_final_model=True):
        raise RuntimeError("boom")


def stub_config(**overrides):
    defaults = dict(cache_results=False, cache_proxy_scores=False)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def test_parallel_results_match_sequential(corpus):
    """N concurrent requests return exactly what N sequential runs return."""
    requests = [
        make_request(corpus, max_augmentations=k, min_improvement=delta)
        for k in (1, 2, 3, 4)
        for delta in (1e-3, 5e-2)
    ]
    sequential_platform = Mileena()
    concurrent_platform = Mileena()
    for relation in corpus.providers:
        sequential_platform.register_dataset(relation)
        concurrent_platform.register_dataset(relation)

    sequential = [sequential_platform.search(request) for request in requests]
    with Gateway(concurrent_platform, GatewayConfig(max_workers=4)) as gateway:
        responses = gateway.run_many(requests)

    assert [response.status for response in responses] == [OK] * len(requests)
    for expected, response in zip(sequential, responses):
        got = response.result
        assert [c.dataset for c in got.plan.candidates] == [
            c.dataset for c in expected.plan.candidates
        ]
        assert got.proxy_test_r2 == expected.proxy_test_r2
        assert got.final_test_r2 == expected.final_test_r2


def test_duplicate_requests_are_coalesced_or_cached(corpus, platform):
    with Gateway(platform, GatewayConfig(max_workers=4)) as gateway:
        responses = gateway.run_many([make_request(corpus) for _ in range(8)])
        assert all(response.ok for response in responses)
        assert sum(response.cache_hit for response in responses) == 7
        scores = {response.result.proxy_test_r2 for response in responses}
        assert len(scores) == 1
        assert gateway.metrics.counter("platform.searches").value == 1


def test_admission_control_rejects_when_queue_full():
    platform = BlockingPlatform()
    gateway = Gateway(platform, stub_config(max_workers=1, max_pending=1))
    try:
        first = gateway.submit(make_stub_request())
        with pytest.raises(AdmissionError):
            gateway.submit(make_stub_request())
        assert gateway.metrics.counter("gateway.rejected").value == 1
        platform.release.set()
        assert first.result(timeout=10).status == OK
        # Capacity is released once the first request completes.
        second = gateway.submit(make_stub_request())
        assert second.result(timeout=10).status == OK
    finally:
        platform.release.set()
        gateway.shutdown()


def test_run_many_converts_rejections_to_responses():
    platform = BlockingPlatform()
    gateway = Gateway(platform, stub_config(max_workers=1, max_pending=1))
    try:
        threading.Timer(0.2, platform.release.set).start()
        responses = gateway.run_many([make_stub_request() for _ in range(3)])
        statuses = [response.status for response in responses]
        assert statuses[0] == OK
        assert statuses[1:] == [REJECTED, REJECTED]
        assert all(response.error for response in responses[1:])
    finally:
        platform.release.set()
        gateway.shutdown()


def test_zero_budget_request_expires():
    platform = BlockingPlatform()
    platform.release.set()
    gateway = Gateway(platform, stub_config())
    try:
        response = gateway.submit(make_stub_request(), time_budget_seconds=0.0).result(
            timeout=10
        )
        assert response.status == EXPIRED
        assert gateway.metrics.counter("gateway.expired").value == 1
    finally:
        gateway.shutdown()


def test_failures_are_isolated_per_request():
    platform = FailingPlatform()
    gateway = Gateway(platform, stub_config(max_workers=2))
    try:
        responses = gateway.run_many([make_stub_request(), make_stub_request()])
        assert [response.status for response in responses] == [FAILED, FAILED]
        assert all("boom" in response.error for response in responses)
        assert gateway.metrics.counter("gateway.failed").value == 2
    finally:
        gateway.shutdown()


def test_budget_scoped_results_not_served_to_unbudgeted_requests():
    """Regression: a result computed under a deadline must not satisfy a
    request submitted with a different (or no) deadline — deadline-truncated
    plans would otherwise poison the cache."""
    platform = BlockingPlatform()
    platform.release.set()
    gateway = Gateway(platform, GatewayConfig(max_workers=1, cache_proxy_scores=False))
    try:
        first = gateway.submit(make_stub_request(), time_budget_seconds=300.0).result(
            timeout=30
        )
        second = gateway.submit(make_stub_request()).result(timeout=30)
        third = gateway.submit(make_stub_request()).result(timeout=30)
        assert first.ok and not first.cache_hit
        assert second.ok and not second.cache_hit  # different budget → miss
        assert third.ok and third.cache_hit  # same (absent) budget → hit
        assert platform.calls == 2
    finally:
        gateway.shutdown()


def test_corpus_epoch_invalidates_cache(corpus):
    platform = Mileena()
    for relation in corpus.providers[:-1]:
        platform.register_dataset(relation)
    with Gateway(platform, GatewayConfig(max_workers=2)) as gateway:
        first = gateway.run_many([make_request(corpus)])[0]
        again = gateway.run_many([make_request(corpus)])[0]
        assert first.ok and not first.cache_hit
        assert again.ok and again.cache_hit
        platform.register_dataset(corpus.providers[-1])
        fresh = gateway.run_many([make_request(corpus)])[0]
        assert fresh.ok and not fresh.cache_hit


def test_gateway_automl_mode(corpus, platform):
    config = GatewayConfig(max_workers=2, run_automl=True)
    with Gateway(platform, config) as gateway:
        requests = [make_request(corpus), make_request(corpus)]
        responses = gateway.run_many(requests)
        assert all(response.ok for response in responses)
        assert sum(response.cache_hit for response in responses) == 1
        first, second = (response.result for response in responses)
        assert first.automl_test_r2 == second.automl_test_r2
        assert first.automl_best_model


def test_gateway_records_metrics(corpus, platform):
    with Gateway(platform, GatewayConfig(max_workers=2)) as gateway:
        gateway.run_many([make_request(corpus) for _ in range(3)])
        snapshot = gateway.metrics.snapshot()
        assert snapshot["counters"]["gateway.requests"] == 3
        assert snapshot["counters"]["gateway.ok"] == 3
        waits = snapshot["histograms"]["gateway.queue_wait_seconds"]
        assert waits["count"] == 3
        rendered = gateway.metrics.render()
        assert "gateway.requests 3" in rendered


def make_stub_request():
    from repro.relational import KEY, NUMERIC, Relation, Schema

    train = Relation(
        "train",
        {"zone": ["a", "b"], "x": [1.0, 2.0], "y": [1.0, 2.0]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    test = Relation(
        "test",
        {"zone": ["a", "b"], "x": [1.5, 2.5], "y": [1.5, 2.5]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    return SearchRequest(train=train, test=test, target="y")
