"""Tests for the result cache, metrics registry, and fingerprint helpers."""

import threading

import pytest

from repro.core import SketchProxyModel
from repro.relational import KEY, NUMERIC, Relation, Schema
from repro.semiring.covariance import CovarianceElement
from repro.serving import (
    CachingProxy,
    MetricsRegistry,
    ResultCache,
    element_fingerprint,
    relation_fingerprint,
    stable_hash,
)
from repro.serving.metrics import Histogram


# -- ResultCache ---------------------------------------------------------------
def test_cache_get_put_and_stats():
    cache = ResultCache(capacity=4, name="c")
    assert cache.get("missing") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert len(cache) == 1
    assert "a" in cache
    stats = cache.stats
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.hit_rate == 0.5


def test_cache_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh "a" so "b" becomes least recently used
    cache.put("c", 3)
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.stats.evictions == 1


def test_cache_get_or_compute():
    cache = ResultCache(capacity=4)
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1


def test_cache_epoch_keys_separate_entries():
    cache = ResultCache(capacity=8)
    cache.put(("req", 0), "old")
    cache.put(("req", 1), "new")
    assert cache.get(("req", 1)) == "new"
    assert cache.get(("req", 0)) == "old"  # stale epoch entries age out via LRU
    cache.clear()
    assert len(cache) == 0


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)


def test_cache_is_thread_safe_under_contention():
    cache = ResultCache(capacity=32)

    def worker(seed):
        for index in range(200):
            cache.put((seed, index % 40), index)
            cache.get((seed, (index + 1) % 40))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(cache) <= 32


# -- MetricsRegistry -----------------------------------------------------------
def test_counters_and_histograms():
    metrics = MetricsRegistry()
    metrics.increment("requests")
    metrics.increment("requests", 2)
    assert metrics.counter("requests").value == 3
    metrics.observe("latency", 0.02)
    metrics.observe("latency", 0.8)
    histogram = metrics.histogram("latency")
    assert histogram.count == 2
    assert histogram.mean == pytest.approx(0.41)
    summary = histogram.summary()
    assert summary["min"] == 0.02
    assert summary["max"] == 0.8
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["requests"] == 3
    assert "latency" in snapshot["histograms"]
    assert "requests 3" in metrics.render()


def test_histogram_bucket_assignment():
    histogram = Histogram("h", buckets=(0.1, 1.0))
    histogram.observe(0.05)  # first bucket
    histogram.observe(0.5)  # second bucket
    histogram.observe(5.0)  # overflow bucket
    assert histogram._counts == [1, 1, 1]
    assert histogram.total == pytest.approx(5.55)


def test_empty_histogram_summary():
    histogram = Histogram("empty")
    summary = histogram.summary()
    assert summary["count"] == 0
    assert summary["mean"] == 0.0
    assert summary["min"] == 0.0


def test_counter_thread_safety():
    metrics = MetricsRegistry()

    def worker():
        for _ in range(1000):
            metrics.increment("n")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert metrics.counter("n").value == 4000


def test_cache_stats_hit_rate_empty():
    metrics = MetricsRegistry()
    assert metrics.cache_stats("nothing").hit_rate == 0.0


# -- fingerprints --------------------------------------------------------------
def make_relation(name="r", values=(1.0, 2.0)):
    return Relation(
        name,
        {"zone": ["a", "b"], "x": list(values)},
        Schema.from_spec({"zone": KEY, "x": NUMERIC}),
    )


def test_stable_hash_is_deterministic():
    assert stable_hash("dataset_7") == stable_hash("dataset_7")
    assert stable_hash("dataset_7") != stable_hash("dataset_8")


def test_relation_fingerprint_sensitive_to_content():
    base = relation_fingerprint(make_relation())
    assert base == relation_fingerprint(make_relation())
    assert base != relation_fingerprint(make_relation(values=(1.0, 2.5)))
    assert base != relation_fingerprint(make_relation(name="other"))


def test_element_fingerprint_sensitive_to_statistics():
    left = CovarianceElement.from_row(("x", "y"), (1.0, 2.0))
    same = CovarianceElement.from_row(("x", "y"), (1.0, 2.0))
    other = CovarianceElement.from_row(("x", "y"), (1.0, 3.0))
    assert element_fingerprint(left) == element_fingerprint(same)
    assert element_fingerprint(left) != element_fingerprint(other)


# -- CachingProxy --------------------------------------------------------------
class CountingProxy:
    def __init__(self):
        self.inner = SketchProxyModel()
        self.calls = 0

    def evaluate(self, train_element, test_element, target):
        self.calls += 1
        return self.inner.evaluate(train_element, test_element, target)


def test_caching_proxy_memoises_identical_elements():
    import numpy as np

    rows = np.array([[1.0, 2.0], [2.0, 3.0], [3.0, 5.0], [4.0, 6.5]])
    element = CovarianceElement.from_matrix(("x", "y"), rows)
    counting = CountingProxy()
    proxy = CachingProxy(counting)
    first = proxy.evaluate(element, element, "y")
    second = proxy.evaluate(element, element, "y")
    assert counting.calls == 1
    assert first is second
    assert proxy.cache.stats.hits == 1
    # A different element is a different key.
    other = CovarianceElement.from_matrix(("x", "y"), rows * 2.0)
    proxy.evaluate(other, other, "y")
    assert counting.calls == 2


def test_cache_version_source_scopes_entries_to_epoch():
    epoch = {"value": 0}
    cache = ResultCache(capacity=8, version_source=lambda: epoch["value"])
    cache.put("k", "old")
    assert cache.get("k") == "old"
    assert "k" in cache
    epoch["value"] += 1  # corpus mutated: the old entry must be unreachable
    assert cache.get("k") is None
    assert "k" not in cache
    cache.put("k", "new")
    assert cache.get("k") == "new"
    epoch["value"] -= 1  # rolling back reveals the old-epoch entry again
    assert cache.get("k") == "old"


def test_cache_version_source_get_or_compute():
    epoch = {"value": 0}
    cache = ResultCache(capacity=8, version_source=lambda: epoch["value"])
    assert cache.get_or_compute("k", lambda: "a") == "a"
    assert cache.get_or_compute("k", lambda: "b") == "a"
    epoch["value"] += 1
    assert cache.get_or_compute("k", lambda: "b") == "b"
