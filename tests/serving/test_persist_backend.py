"""Process-backend durability: snapshot bootstrap and bounded mutation logs.

The acceptance bar for the durable-state subsystem: a replica bootstrapped
from snapshot + WAL tail returns byte-identical results to the live
platform, and the per-envelope mutation log stays bounded (≤ the snapshot
cadence with durability on; pruned to unacknowledged entries with it off)
under sustained register/unregister churn — the log can never again grow
without bound.
"""

import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.serving import Gateway, GatewayConfig

_SPEC = CorpusSpec(num_datasets=14, requester_rows=110, provider_rows=110, seed=7)
_INITIAL = 8


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="module")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )


def fresh_platform(corpus, **kwargs):
    platform = Mileena.sharded(num_shards=2, **kwargs)
    for relation in corpus.providers[:_INITIAL]:
        platform.register_dataset(relation)
    return platform


def churn_step(platform, corpus, index):
    """One register-or-unregister mutation, deterministic per index."""
    extra = corpus.providers[_INITIAL:]
    if index % 3 == 2:
        victim = corpus.providers[index % _INITIAL].name
        if victim in platform.corpus:
            platform.corpus.remove(victim)
            return ("removed", victim)
    relation = extra[index % len(extra)]
    if relation.name in platform.corpus:
        platform.corpus.remove(relation.name)
        return ("removed", relation.name)
    platform.register_dataset(relation)
    return ("added", relation.name)


def result_identity(result):
    report = result.final_report
    return (
        tuple((c.kind, c.dataset, c.join_key) for c in result.plan.candidates),
        result.proxy_test_r2,
        report.model.model_.intercept,
        report.model.model_.coefficients.tobytes(),
    )


def test_snapshot_bootstrap_is_byte_identical(tmp_path, corpus, request_for):
    """Replicas warm-started from the snapshot file (registrations never
    cross the spec pickle) must match the sequential oracle exactly —
    including DP-randomised sketches, which only survive via the file."""
    oracle = fresh_platform(corpus)
    for index, relation in enumerate(corpus.providers[:3]):
        oracle.corpus.remove(relation.name)
        oracle.register_dataset(relation, epsilon=2.0)
    expected = result_identity(oracle.search(request_for))

    platform = fresh_platform(corpus, snapshot_dir=tmp_path)
    for relation in corpus.providers[:3]:
        platform.corpus.remove(relation.name)
        platform.register_dataset(relation, epsilon=2.0)
    # DP sketches are randomised per registration: force the oracle's onto
    # the gateway platform so both sides score identical sketches.
    for relation in corpus.providers[:3]:
        name = relation.name
        platform.corpus.registrations[name] = oracle.corpus.registrations[name]
        platform.corpus.sketches.add(oracle.corpus.sketches.get(name), replace=True)
    config = GatewayConfig(
        max_workers=2,
        process_workers=1,
        backend="process",
        snapshot_dir=str(tmp_path),
        snapshot_every_mutations=4,
    )
    with Gateway(platform, config) as gateway:
        # The spec shipped a snapshot ref instead of pickled registrations.
        assert gateway.backend._pending_snapshot is not None
        response = gateway.run_many([request_for])[0]
    assert response.ok, response.error
    assert result_identity(response.result) == expected
    # Served by the replica at the admitted epoch, not by parent fallback.
    assert gateway.metrics.counter("gateway.backend.process.stale_replicas").value == 0


def test_envelope_log_bounded_by_cadence_under_churn(tmp_path, corpus, request_for):
    cadence = 4
    platform = fresh_platform(corpus)
    reference = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        process_workers=1,
        backend="process",
        snapshot_dir=str(tmp_path),
        snapshot_every_mutations=cadence,
    )
    with Gateway(platform, config) as gateway:
        backend = gateway.backend
        for index in range(18):
            op, name = churn_step(platform, corpus, index)
            churn_step(reference, corpus, index)
            # The raw log is re-based every `cadence` mutations by the
            # snapshot listener; _sync_ops prunes it before pickling.
            ops, _, _ = backend._sync_ops()
            assert len(ops) <= cadence, (index, len(ops))
            if index % 6 == 5:
                response = gateway.run_many([request_for])[0]
                assert response.ok, response.error
        final = gateway.run_many([request_for])[0]
    assert final.ok
    assert result_identity(final.result) == result_identity(
        reference.search(request_for)
    )
    assert gateway.metrics.counter("persist.snapshots").value >= 4


def test_replica_reloads_from_snapshot_after_pruned_churn(
    tmp_path, corpus, request_for
):
    """Churn (with no traffic) past the cadence prunes the log below the
    newest snapshot; the next request forces the replica to warm-start
    from the snapshot file — and still compute at the admitted epoch
    rather than punting back to the parent."""
    platform = fresh_platform(corpus)
    reference = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        process_workers=1,
        backend="process",
        snapshot_dir=str(tmp_path),
        snapshot_every_mutations=3,
    )
    with Gateway(platform, config) as gateway:
        warm = gateway.run_many([request_for])[0]
        assert warm.ok
        for index in range(9):
            churn_step(platform, corpus, index)
            churn_step(reference, corpus, index)
        after = gateway.run_many([request_for])[0]
    assert after.ok, after.error
    assert result_identity(after.result) == result_identity(
        reference.search(request_for)
    )
    assert gateway.metrics.counter("persist.replica_reloads").value >= 1
    assert gateway.metrics.counter("gateway.backend.process.stale_replicas").value == 0


def test_log_pruned_by_acknowledgements_without_snapshots(corpus, request_for):
    """Satellite: with durability off, entries every replica has applied
    are dropped before pickling, so steady traffic keeps the envelope log
    bounded under sustained churn (it used to grow monotonically)."""
    platform = fresh_platform(corpus)
    config = GatewayConfig(max_workers=2, process_workers=1, backend="process")
    observed: list[int] = []
    with Gateway(platform, config) as gateway:
        backend = gateway.backend
        for index in range(10):
            churn_step(platform, corpus, index)
            response = gateway.run_many([request_for])[0]
            assert response.ok, response.error
            ops, _, _ = backend._sync_ops()
            observed.append(len(ops))
    # Every request acknowledges the epoch it computed at, so the next
    # envelope carries at most the single not-yet-acked mutation (and the
    # post-request sync always comes back empty).
    assert max(observed) == 0, observed
    with backend._log_lock:
        assert len(backend._log) == 0
