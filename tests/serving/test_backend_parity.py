"""Backend parity: thread, process, and async gateways are result identical.

The execution backends differ in *where* requests run (GIL-bound threads,
worker processes with their own platform replicas, an asyncio event loop)
but must never differ in *what* they return.  This suite drives all three
through the same workloads — join- and union-producing searches, cached
repeats, and a mid-flight ``Corpus.add_many`` epoch bump — and compares
responses field for field (timing measurements excluded: they are
observations of the run, not part of the result).
"""

import numpy as np
import pytest

from repro.core import Mileena, SearchRequest
from repro.core.augmentation import JOIN, UNION
from repro.datasets import CorpusSpec, generate_corpus
from repro.serving import Gateway, GatewayConfig

BACKENDS = ("thread", "process", "async")

_SPEC = CorpusSpec(num_datasets=14, requester_rows=150, provider_rows=150, seed=11)
_INITIAL = 11  # providers registered up front; the rest arrive via add_many


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


def fresh_platform(corpus, upto=_INITIAL):
    platform = Mileena.sharded(num_shards=2)
    for relation in corpus.providers[:upto]:
        platform.register_dataset(relation)
    return platform


def make_requests(corpus):
    """A small matrix of distinct tasks (join and union candidates appear)."""
    return [
        SearchRequest(
            train=corpus.train,
            test=corpus.test,
            target=corpus.target,
            max_augmentations=k,
            min_improvement=delta,
        )
        for k in (1, 3)
        for delta in (1e-3, 5e-2)
    ]


def gateway_config(**overrides):
    defaults = dict(max_workers=2, process_workers=2)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def response_identity(response):
    """Everything that defines a response except wall-clock measurements."""
    result = response.result
    if result is None:
        payload = None
    else:
        report = result.final_report
        payload = (
            tuple(
                (c.kind, c.dataset, c.join_key, c.column_mapping)
                for c in result.plan.candidates
            ),
            result.proxy_test_r2,
            result.candidates_considered,
            None
            if report is None
            else (
                report.train_r2,
                report.test_r2,
                report.num_features,
                tuple(report.feature_names),
                report.model.model_.intercept,
                report.model.model_.coefficients.tobytes(),
            ),
        )
    return (response.status, response.error, payload)


def registrations_for(relations):
    """Build registrations out-of-band so add_many gets identical sketches."""
    scratch = Mileena()
    for relation in relations:
        scratch.register_dataset(relation)
    return [scratch.corpus.registrations[relation.name] for relation in relations]


@pytest.fixture(scope="module")
def reference(corpus):
    """Flat sequential platform responses: the oracle every backend must match."""
    platform = fresh_platform(corpus)
    return [response_identity_from_result(platform.search(r)) for r in make_requests(corpus)]


def response_identity_from_result(result):
    class _Shim:
        pass

    shim = _Shim()
    shim.status = "ok"
    shim.error = None
    shim.result = result
    return response_identity(shim)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_sequential_reference(corpus, reference, backend):
    with Gateway(fresh_platform(corpus), gateway_config(backend=backend)) as gateway:
        responses = gateway.run_many(make_requests(corpus))
    assert [response.status for response in responses] == ["ok"] * len(responses)
    assert [response_identity(r) for r in responses] == reference


def test_all_backends_byte_identical(corpus):
    """The three backends agree with each other on every field that matters."""
    identities = {}
    for backend in BACKENDS:
        with Gateway(fresh_platform(corpus), gateway_config(backend=backend)) as gateway:
            responses = gateway.run_many(make_requests(corpus))
        identities[backend] = [response_identity(r) for r in responses]
    assert identities["process"] == identities["thread"]
    assert identities["async"] == identities["thread"]


def test_workload_exercises_join_and_union(corpus):
    """The parity matrix is only meaningful if both candidate kinds compete."""
    platform = fresh_platform(corpus)
    request = make_requests(corpus)[2]
    discovered = {c.kind for c in platform.discover_candidates(request)}
    assert discovered == {JOIN, UNION}
    accepted = {c.kind for c in platform.search(request).plan.candidates}
    assert JOIN in accepted  # joins win on this corpus; unions are scored too


@pytest.mark.parametrize("backend", BACKENDS)
def test_union_query_parity(corpus, backend):
    """On a union-only corpus the accepted plan is a union on every backend."""
    union_only = corpus.providers[6:10]  # the demand_history_* providers
    request = SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )

    expected_platform = Mileena.sharded(num_shards=2)
    for relation in union_only:
        expected_platform.register_dataset(relation)
    expected = response_identity_from_result(expected_platform.search(request))
    accepted = {c.kind for c in expected_platform.search(request).plan.candidates}
    assert accepted == {UNION}

    platform = Mileena.sharded(num_shards=2)
    for relation in union_only:
        platform.register_dataset(relation)
    with Gateway(platform, gateway_config(backend=backend)) as gateway:
        response = gateway.run_many([request])[0]
    assert response.ok
    assert response_identity(response) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_cached_repeat_is_identical(corpus, backend):
    request = make_requests(corpus)[0]
    with Gateway(fresh_platform(corpus), gateway_config(backend=backend)) as gateway:
        first = gateway.run_many([request])[0]
        again = gateway.run_many([request])[0]
    assert first.ok and not first.cache_hit
    assert again.ok and again.cache_hit
    assert response_identity(first) == response_identity(again)


@pytest.mark.parametrize("backend", BACKENDS)
def test_midflight_add_many_epoch_bump(corpus, backend):
    """A bulk registration between requests invalidates caches on every
    backend and produces the post-mutation sequential answer (the process
    backend must replay the mutation log into its worker replicas)."""
    request = make_requests(corpus)[1]
    late = registrations_for(corpus.providers[_INITIAL:])

    expected_platform = fresh_platform(corpus)
    before_expected = response_identity_from_result(expected_platform.search(request))
    expected_platform.corpus.add_many(registrations_for(corpus.providers[_INITIAL:]))
    after_expected = response_identity_from_result(expected_platform.search(request))

    with Gateway(fresh_platform(corpus), gateway_config(backend=backend)) as gateway:
        epoch_before = gateway.platform.corpus.epoch
        before = gateway.run_many([request])[0]
        gateway.platform.corpus.add_many(late)
        assert gateway.platform.corpus.epoch == epoch_before + 1
        after = gateway.run_many([request])[0]
        repeat = gateway.run_many([request])[0]

    assert before.ok and after.ok
    assert not after.cache_hit  # the epoch bump must invalidate the cache
    assert response_identity(before) == before_expected
    assert response_identity(after) == after_expected
    assert repeat.cache_hit
    assert response_identity(repeat) == after_expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_unregister_churn_parity(corpus, backend):
    """Removals propagate too: the process backend's replicas replay them."""
    request = make_requests(corpus)[0]
    removed = corpus.providers[0].name

    expected_platform = fresh_platform(corpus)
    expected_platform.corpus.remove(removed)
    expected = response_identity_from_result(expected_platform.search(request))

    with Gateway(fresh_platform(corpus), gateway_config(backend=backend)) as gateway:
        warm = gateway.run_many([request])[0]
        gateway.platform.corpus.remove(removed)
        after = gateway.run_many([request])[0]

    assert warm.ok and after.ok and not after.cache_hit
    assert response_identity(after) == expected


def test_async_follower_deadline_does_not_cancel_leader():
    """Regression: a coalesced follower whose deadline expires while the
    leader is still computing must cancel only its own wait — an unshielded
    wait would propagate cancellation into the shared flight and turn the
    leader's successfully computed response into a failure.

    Coalescing keys include the submitted budget, so leader and follower
    share one budget value; the follower expires first because it was
    admitted later (its deadline started later but its wait on the leader
    is bounded by what remains of its own budget)."""
    import threading
    import time

    from repro.core import WallClock

    release = threading.Event()

    class _StubCorpus:
        epoch = 0

        def registration_snapshot(self):
            return 0, {}

    class BlockingPlatform:
        def __init__(self):
            self.clock = WallClock()
            self.metrics = None
            self.cache = None
            self.corpus = _StubCorpus()
            self.calls = 0

        def search(self, request, train_final_model=True):
            self.calls += 1
            if not release.wait(timeout=10.0):
                raise TimeoutError("leader was never released")
            return request.max_augmentations

    platform = BlockingPlatform()
    gateway = Gateway(
        platform,
        GatewayConfig(max_workers=2, cache_proxy_scores=False, backend="async"),
    )
    try:
        request = _stub_request()
        budget = 1.0
        leader = gateway.submit(request, time_budget_seconds=budget)
        time.sleep(0.1)  # let the leader claim the flight and start computing
        impatient = gateway.submit(request, time_budget_seconds=budget)
        time.sleep(0.4)  # a later follower: its deadline outlives impatient's
        patient = gateway.submit(request, time_budget_seconds=budget)
        expired = impatient.result(timeout=10)
        assert expired.status == "expired", (expired.status, expired.error)
        release.set()
        done = leader.result(timeout=10)
        # Without the shield/tolerant hand-off the leader comes back FAILED
        # (InvalidStateError from the cancelled shared future) and the
        # patient follower is collateral damage of impatient's cancellation.
        assert done.status == "ok", (done.status, done.error)
        shared = patient.result(timeout=10)
        assert shared.status == "ok" and shared.cache_hit, (shared.status, shared.error)
        assert gateway.metrics.counter("gateway.failed").value == 0
        assert gateway.metrics.counter("gateway.coalesced").value == 2
        assert platform.calls == 1
    finally:
        release.set()
        gateway.shutdown()


def _stub_request():
    from repro.relational import KEY, NUMERIC, Relation, Schema

    train = Relation(
        "train",
        {"zone": ["a", "b"], "x": [1.0, 2.0], "y": [1.0, 2.0]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    test = Relation(
        "test",
        {"zone": ["a", "b"], "x": [1.5, 2.5], "y": [1.5, 2.5]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    return SearchRequest(train=train, test=test, target="y")


def test_numpy_payloads_survive_pickling(corpus):
    """Process-backend results cross a pickle boundary; spot-check arrays."""
    request = make_requests(corpus)[0]
    with Gateway(
        fresh_platform(corpus), gateway_config(backend="process")
    ) as gateway:
        response = gateway.run_many([request])[0]
    assert response.ok
    coefficients = response.result.final_report.model.model_.coefficients
    assert isinstance(coefficients, np.ndarray)
    assert coefficients.dtype == np.float64
