"""One cache handle: the sharded index's discovery cache inside the gateway's.

The gateway's request `ResultCache` and `ShardedDiscoveryIndex.cache` used
to memoise at different granularities in two separate LRUs with two
invalidation paths.  A gateway now hands the index an epoch-scoped *view*
of its own cache: entries live in one store under one capacity, discovery
hits still land under the ``discovery_cache`` metrics name, and a
register/unregister invalidates both families through their version
scopes.
"""

import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.serving import Gateway, GatewayConfig, ResultCache
from repro.serving.cache import CacheView

_SPEC = CorpusSpec(num_datasets=12, requester_rows=100, provider_rows=100, seed=9)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


def make_platform(corpus):
    platform = Mileena.sharded(num_shards=2, discovery_cache_capacity=8)
    for relation in corpus.providers[:6]:
        platform.register_dataset(relation)
    return platform


def test_gateway_adopts_index_cache_as_view(corpus):
    platform = make_platform(corpus)
    standalone_cache = platform.corpus.discovery.cache
    assert isinstance(standalone_cache, ResultCache)  # before: its own LRU
    with Gateway(platform, GatewayConfig(max_workers=2)) as gateway:
        adopted = platform.corpus.discovery.cache
        assert isinstance(adopted, CacheView)
        assert adopted.parent is gateway.cache
        request = SearchRequest(
            train=corpus.train,
            test=corpus.test,
            target=corpus.target,
            max_augmentations=1,
        )
        assert gateway.run_many([request])[0].ok
        # Discovery fan-out results landed in the gateway's single store.
        discovery_entries = [
            key
            for key in gateway.cache._entries
            if isinstance(key, tuple) and key[:2] == ("view", "discovery_cache")
        ]
        assert discovery_entries
        # Repeat queries hit the shared handle under the discovery name.
        platform.corpus.discovery.join_candidates(corpus.train)
        assert gateway.metrics.cache_stats("discovery_cache").hits >= 1


def test_view_invalidation_tracks_index_epoch(corpus):
    platform = make_platform(corpus)
    with Gateway(platform, GatewayConfig(max_workers=2)) as gateway:
        discovery = platform.corpus.discovery
        before = discovery.join_candidates(corpus.train)
        hits_before = gateway.metrics.cache_stats("discovery_cache").hits
        assert discovery.join_candidates(corpus.train) == before
        assert gateway.metrics.cache_stats("discovery_cache").hits == hits_before + 1
        # A registration bumps the index epoch: the cached candidate list
        # must become unreachable, and the fresh scan must see the newcomer.
        platform.register_dataset(corpus.providers[6])
        after = discovery.join_candidates(corpus.train)
        assert {c.dataset for c in after} >= {c.dataset for c in before}
        misses = gateway.metrics.cache_stats("discovery_cache").misses
        assert misses >= 2  # initial fill + post-epoch refill


def test_view_and_parent_keys_cannot_collide():
    parent = ResultCache(capacity=8, name="parent")
    view = parent.view("child", version_source=lambda: 1)
    parent.put(("a",), "parent-value")
    view.put(("a",), "child-value")
    assert parent.get(("a",)) == "parent-value"
    assert view.get(("a",)) == "child-value"
    view.clear()
    assert view.get(("a",)) is None
    assert parent.get(("a",)) == "parent-value"


def test_shared_capacity_is_single_budget():
    parent = ResultCache(capacity=4, name="parent")
    view = parent.view("child")
    for index in range(4):
        view.put(index, index)
    parent.put("own", "entry")  # fifth entry: evicts the oldest view entry
    assert len(parent) == 4
    assert view.get(0) is None
    assert parent.get("own") == "entry"


def test_standalone_index_keeps_private_cache(corpus):
    platform = make_platform(corpus)
    discovery = platform.corpus.discovery
    assert isinstance(discovery.cache, ResultCache)
    first = discovery.join_candidates(corpus.train)
    assert discovery.join_candidates(corpus.train) == first
    assert discovery.cache.stats.hits >= 1
