"""Registry correctness under concurrency, non-creating reads, percentiles."""

import threading

import pytest

from repro.serving.metrics import Histogram, MetricsRegistry


def hammer(threads, work):
    workers = [threading.Thread(target=work) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestConcurrentUpdates:
    THREADS = 8
    PER_THREAD = 2000

    def test_counter_increments_are_exact(self):
        metrics = MetricsRegistry()

        def work():
            for _ in range(self.PER_THREAD):
                metrics.increment("hammered.total")
                metrics.increment("hammered.batch", 3)

        hammer(self.THREADS, work)
        expected = self.THREADS * self.PER_THREAD
        assert metrics.counter_value("hammered.total") == expected
        assert metrics.counter_value("hammered.batch") == expected * 3

    def test_histogram_observations_are_exact(self):
        metrics = MetricsRegistry()

        def work():
            for index in range(self.PER_THREAD):
                metrics.observe("hammered.seconds", 0.001 * (index % 10))

        hammer(self.THREADS, work)
        summary = metrics.histogram("hammered.seconds").summary()
        expected = self.THREADS * self.PER_THREAD
        assert summary["count"] == expected
        assert summary["sum"] == pytest.approx(
            self.THREADS * sum(0.001 * (i % 10) for i in range(self.PER_THREAD))
        )

    def test_gauge_adjustments_are_exact(self):
        metrics = MetricsRegistry()

        def work():
            for _ in range(self.PER_THREAD):
                metrics.adjust_gauge("hammered.depth", 1)
                metrics.adjust_gauge("hammered.depth", -1)

        hammer(self.THREADS, work)
        assert metrics.gauge("hammered.depth").value == 0

    def test_concurrent_creation_yields_one_instance(self):
        metrics = MetricsRegistry()
        seen = []

        def work():
            seen.append(metrics.counter("contended"))

        hammer(self.THREADS, work)
        assert all(counter is seen[0] for counter in seen)


class TestNonCreatingReads:
    def test_counter_value_of_unknown_name_is_zero(self):
        metrics = MetricsRegistry()
        assert metrics.counter_value("never.emitted") == 0
        assert metrics.snapshot()["counters"] == {}

    def test_cache_stats_does_not_materialise_counters(self):
        """Regression: ``cache_stats`` used to call ``counter(...)`` on the
        read path, permanently creating hits/misses/evictions counters for
        any prefix ever queried."""
        metrics = MetricsRegistry()
        stats = metrics.cache_stats("unknown_layer")
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
        assert stats.hit_rate == 0.0
        assert metrics.snapshot()["counters"] == {}
        assert "unknown_layer" not in metrics.render()

    def test_cache_stats_still_reads_live_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("layer.hits", 3)
        metrics.increment("layer.misses", 1)
        stats = metrics.cache_stats("layer")
        assert stats.hits == 3 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.75)
        # The read created nothing: evictions stays unmaterialised.
        assert "layer.evictions" not in metrics.snapshot()["counters"]


class TestHistogramPercentiles:
    def test_empty_histogram_percentiles_are_zero(self):
        histogram = Histogram("empty")
        assert histogram.percentile(0.5) == 0.0
        summary = histogram.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0

    def test_quantile_validation(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_single_observation_is_exact(self):
        histogram = Histogram("h")
        histogram.observe(0.042)
        for quantile in (0.5, 0.95, 0.99, 1.0):
            assert histogram.percentile(quantile) == pytest.approx(0.042)

    def test_percentiles_are_monotonic_and_bounded(self):
        histogram = Histogram("h")
        values = [0.0004, 0.003, 0.007, 0.02, 0.08, 0.3, 0.7, 2.0, 20.0, 100.0]
        for value in values:
            histogram.observe(value)
        estimates = [histogram.percentile(q) for q in (0.25, 0.5, 0.75, 0.95, 1.0)]
        assert estimates == sorted(estimates)
        assert all(min(values) <= e <= max(values) for e in estimates)

    def test_interpolation_lands_inside_target_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        # Rank 2 of 4 falls in the (1.0, 2.0] bucket.
        assert 1.0 <= histogram.percentile(0.5) <= 2.0
        # Rank 3.8 falls in the (2.0, 4.0] bucket.
        assert 2.0 <= histogram.percentile(0.95) <= 4.0

    def test_overflow_bucket_interpolates_to_observed_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (0.5, 10.0, 10.0, 10.0):
            histogram.observe(value)
        assert histogram.percentile(0.99) <= 10.0
        assert histogram.percentile(0.99) > 1.0

    def test_render_includes_percentiles(self):
        metrics = MetricsRegistry()
        metrics.observe("latency", 0.01)
        lines = metrics.render().splitlines()
        line = next(entry for entry in lines if entry.startswith("latency"))
        assert "p50=" in line and "p95=" in line and "p99=" in line
