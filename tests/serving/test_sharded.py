"""Equivalence tests: sharded store/index must match the flat variants exactly."""

import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.discovery import DiscoveryIndex, DiscoveryIndexLike, MinHasher
from repro.exceptions import DiscoveryError, SketchError
from repro.serving import ShardedDiscoveryIndex, ShardedSketchStore
from repro.sketches import SketchBuilder, SketchStore, SketchStoreLike


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(num_datasets=16, requester_rows=250, seed=3))


@pytest.fixture(scope="module")
def sketches(corpus):
    builder = SketchBuilder()
    return [builder.build(relation) for relation in corpus.providers]


def test_sharded_store_satisfies_protocol():
    assert isinstance(ShardedSketchStore(num_shards=2), SketchStoreLike)
    assert isinstance(SketchStore(), SketchStoreLike)


def test_sharded_index_satisfies_protocol():
    assert isinstance(ShardedDiscoveryIndex(num_shards=2), DiscoveryIndexLike)
    assert isinstance(DiscoveryIndex(), DiscoveryIndexLike)


def test_invalid_shard_counts_rejected():
    with pytest.raises(SketchError):
        ShardedSketchStore(num_shards=0)
    with pytest.raises(DiscoveryError):
        ShardedDiscoveryIndex(num_shards=0)


@pytest.mark.parametrize("num_shards", [1, 3, 8])
def test_sharded_store_matches_flat(sketches, num_shards):
    flat = SketchStore()
    sharded = ShardedSketchStore(num_shards=num_shards)
    for sketch in sketches:
        flat.add(sketch)
        sharded.add(sketch)

    assert len(sharded) == len(flat)
    assert sharded.datasets() == flat.datasets()
    for sketch in sketches:
        assert sketch.dataset in sharded
        assert sharded.get(sketch.dataset) is flat.get(sketch.dataset)
    join_keys = {key for sketch in sketches for key in sketch.keyed}
    for key in sorted(join_keys) + ["missing_key"]:
        assert sharded.with_join_key(key) == flat.with_join_key(key)
    feature_sets = {sketch.features for sketch in sketches}
    for features in sorted(feature_sets):
        assert sharded.unionable_with(features) == flat.unionable_with(features)

    removed = sketches[0].dataset
    flat.remove(removed)
    sharded.remove(removed)
    assert removed not in sharded
    assert sharded.datasets() == flat.datasets()
    for key in sorted(join_keys):
        assert sharded.with_join_key(key) == flat.with_join_key(key)


def test_sharded_store_duplicate_add_and_replace(sketches):
    sharded = ShardedSketchStore(num_shards=4)
    sharded.add(sketches[0])
    with pytest.raises(SketchError):
        sharded.add(sketches[0])
    sharded.add(sketches[0], replace=True)
    assert len(sharded) == 1
    with pytest.raises(SketchError):
        sharded.get("never_registered")
    assert 42 not in sharded  # non-string membership probe


@pytest.mark.parametrize("num_shards", [1, 3, 8])
def test_sharded_index_matches_flat(corpus, num_shards):
    flat = DiscoveryIndex(minhasher=MinHasher())
    sharded = ShardedDiscoveryIndex(num_shards=num_shards, minhasher=MinHasher())
    for relation in corpus.providers:
        flat.register(relation)
        sharded.register(relation)

    assert len(sharded) == len(flat)
    for relation in corpus.providers:
        assert relation.name in sharded

    for top_k in (None, 5, 1, 0):
        assert sharded.join_candidates(corpus.train, top_k) == flat.join_candidates(
            corpus.train, top_k
        )
        assert sharded.union_candidates(corpus.train, top_k) == flat.union_candidates(
            corpus.train, top_k
        )

    # Unregistering keeps the shared IDF model aligned with the flat index.
    victim = corpus.providers[2].name
    flat.unregister(victim)
    sharded.unregister(victim)
    assert victim not in sharded
    assert sharded.idf_model.document_count == flat.idf_model.document_count
    assert sharded.union_candidates(corpus.train) == flat.union_candidates(corpus.train)
    assert sharded.join_candidates(corpus.train) == flat.join_candidates(corpus.train)


def test_sharded_index_discover_dispatch(corpus):
    sharded = ShardedDiscoveryIndex(num_shards=2)
    for relation in corpus.providers[:4]:
        sharded.register(relation)
    joins = sharded.discover(corpus.train, "join", top_k=2)
    unions = sharded.discover(corpus.train, "union", top_k=2)
    assert len(joins) <= 2
    assert len(unions) <= 2
    with pytest.raises(DiscoveryError):
        sharded.discover(corpus.train, "cross")


def test_sharded_platform_matches_flat_platform(corpus):
    flat = Mileena()
    sharded = Mileena.sharded(num_shards=4)
    for relation in corpus.providers:
        flat.register_dataset(relation)
        sharded.register_dataset(relation)

    def request():
        return SearchRequest(
            train=corpus.train,
            test=corpus.test,
            target=corpus.target,
            max_augmentations=3,
        )

    flat_result = flat.search(request())
    sharded_result = sharded.search(request())
    assert [c.dataset for c in flat_result.plan.candidates] == [
        c.dataset for c in sharded_result.plan.candidates
    ]
    assert flat_result.proxy_test_r2 == sharded_result.proxy_test_r2
    assert flat_result.final_test_r2 == sharded_result.final_test_r2
    assert flat_result.candidates_considered == sharded_result.candidates_considered


def test_shard_assignment_is_stable_and_spread(sketches):
    first = ShardedSketchStore(num_shards=4)
    second = ShardedSketchStore(num_shards=4)
    for sketch in sketches:
        first.add(sketch)
        second.add(sketch)
    first_sizes = [len(shard) for shard in first.shards]
    assert first_sizes == [len(shard) for shard in second.shards]
    # With 16 datasets over 4 shards the hash should not collapse onto one.
    assert sum(1 for size in first_sizes if size > 0) >= 2


def test_sharded_index_scalar_shards_match_vectorized(corpus):
    """The shards' vectorized engine is result-identical to scalar shards."""
    scalar = ShardedDiscoveryIndex(num_shards=3, vectorized=False)
    vectorized = ShardedDiscoveryIndex(num_shards=3, vectorized=True)
    lsh = ShardedDiscoveryIndex(num_shards=3, use_lsh=True)
    for relation in corpus.providers:
        scalar.register(relation)
        vectorized.register(relation)
        lsh.register(relation)
    assert vectorized.join_candidates(corpus.train) == scalar.join_candidates(corpus.train)
    assert vectorized.union_candidates(corpus.train) == scalar.union_candidates(corpus.train)
    assert lsh.union_candidates(corpus.train) == scalar.union_candidates(corpus.train)


def test_sharded_index_epoch_counts_effective_mutations(corpus):
    sharded = ShardedDiscoveryIndex(num_shards=2)
    assert sharded.epoch == 0
    sharded.register(corpus.providers[0])
    sharded.register(corpus.providers[1])
    assert sharded.epoch == 2
    sharded.unregister("never_registered")  # no-op: epoch must not move
    assert sharded.epoch == 2
    sharded.unregister(corpus.providers[0].name)
    assert sharded.epoch == 3


def test_sharded_index_discovery_cache_serves_and_invalidates(corpus):
    uncached = ShardedDiscoveryIndex(num_shards=2)
    cached = ShardedDiscoveryIndex(num_shards=2, cache_capacity=16)
    for relation in corpus.providers[:8]:
        uncached.register(relation)
        cached.register(relation)
    first = cached.join_candidates(corpus.train)
    assert first == uncached.join_candidates(corpus.train)
    assert cached.join_candidates(corpus.train) == first
    assert cached.cache.stats.hits >= 1
    assert cached.union_candidates(corpus.train, top_k=2) == uncached.union_candidates(
        corpus.train, top_k=2
    )
    # A registration moves the epoch, so the cached candidate list (which
    # does not contain the new dataset) can never be served again.
    uncached.register(corpus.providers[8])
    cached.register(corpus.providers[8])
    assert cached.join_candidates(corpus.train) == uncached.join_candidates(corpus.train)


def test_sharded_platform_with_lsh_and_cache_serves_requests(corpus):
    platform = Mileena.sharded(num_shards=2, use_lsh=True, discovery_cache_capacity=8)
    for relation in corpus.providers[:6]:
        platform.register_dataset(relation)
    request = SearchRequest(
        train=corpus.train, test=corpus.test, target=corpus.target, max_augmentations=2
    )
    result = platform.search(request)
    assert result is not None
