"""Trace propagation parity across the three execution backends.

A sampled request must come back as ONE stitched trace whatever backend
ran it: parent-side spans (admission, cache_lookup, dispatch) plus the
compute spans — which for the process backend are collected in a worker
process, shipped back inside ``ComputeOutcome``, and re-attached to the
parent's live trace.  The replica's persistence spans (WAL replay,
snapshot bootstrap) must survive the same journey.
"""

import pytest

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.serving import Gateway, GatewayConfig

BACKENDS = ("thread", "process", "async")

_SPEC = CorpusSpec(num_datasets=12, requester_rows=90, provider_rows=90, seed=19)
_INITIAL = 8

#: Spans every backend must contribute from the gateway side of the trace.
PARENT_SIDE = {"request", "admission", "cache_lookup", "dispatch"}

#: Compute-phase spans the platform emits wherever the search actually runs.
COMPUTE_SIDE = {
    "compute.sketches",
    "discovery.join",
    "discovery.union",
    "discovery.shard_fanout",
    "score.greedy",
    "score.proxy",
    "score.final_model",
}


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="module")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )


def fresh_platform(corpus, **kwargs):
    platform = Mileena.sharded(num_shards=2, **kwargs)
    for relation in corpus.providers[:_INITIAL]:
        platform.register_dataset(relation)
    return platform


def churn_step(platform, corpus, index):
    extra = corpus.providers[_INITIAL:]
    relation = extra[index % len(extra)]
    if relation.name in platform.corpus:
        platform.corpus.remove(relation.name)
    else:
        platform.register_dataset(relation)


def traced_config(**overrides):
    defaults = dict(max_workers=2, process_workers=1, trace_sample_rate=1.0)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def names_of(trace):
    return {record.name for record in trace.records}


def by_name(trace):
    return {record.name: record for record in trace.records}


@pytest.mark.parametrize("backend", BACKENDS)
def test_sampled_request_yields_one_stitched_trace(corpus, request_for, backend):
    with Gateway(
        fresh_platform(corpus), traced_config(backend=backend)
    ) as gateway:
        response = gateway.run_many([request_for])[0]
        assert response.ok, response.error
        [trace] = gateway.tracer.buffer.snapshot()

    names = names_of(trace)
    assert PARENT_SIDE <= names, names
    assert COMPUTE_SIDE <= names, names
    # Stitched: every record — wherever it was produced — carries the same
    # trace id, and the span tree is fully connected (no orphans).
    assert {record.trace_id for record in trace.records} == {trace.trace_id}
    ids = {record.span_id for record in trace.records}
    orphans = [
        record.name
        for record in trace.records
        if record.parent_id is not None and record.parent_id not in ids
    ]
    assert orphans == [], orphans

    records = by_name(trace)
    assert records["request"].attrs["status"] == "ok"
    assert records["cache_lookup"].attrs["outcome"] == "miss"
    assert records["admission"].parent_id == records["request"].span_id
    if backend == "process":
        # Replica-side spans shipped across the process boundary and
        # re-rooted under the parent's dispatch span.
        assert {"replica", "replica.replay", "replica.compute"} <= names
        assert records["replica"].parent_id == records["dispatch"].span_id
        assert records["replica.compute"].parent_id == records["replica"].span_id
        assert records["compute.sketches"].parent_id == records["replica.compute"].span_id
    else:
        assert records["compute"].parent_id == records["dispatch"].span_id
        assert records["compute.sketches"].parent_id == records["compute"].span_id


@pytest.mark.parametrize("backend", BACKENDS)
def test_cache_hit_trace_marks_outcome(corpus, request_for, backend):
    with Gateway(
        fresh_platform(corpus), traced_config(backend=backend)
    ) as gateway:
        assert gateway.run_many([request_for])[0].ok
        assert gateway.run_many([request_for])[0].cache_hit
        miss, hit = gateway.tracer.buffer.snapshot()
    assert by_name(miss)["cache_lookup"].attrs["outcome"] == "miss"
    assert by_name(hit)["cache_lookup"].attrs["outcome"] == "hit"
    assert COMPUTE_SIDE <= names_of(miss)
    assert not (COMPUTE_SIDE & names_of(hit))


def test_unsampled_requests_leave_no_traces(corpus, request_for):
    config = traced_config(backend="thread", trace_sample_rate=0.0)
    with Gateway(fresh_platform(corpus), config) as gateway:
        assert gateway.run_many([request_for])[0].ok
        assert len(gateway.tracer.buffer) == 0
    # The always-on counters still tick without retention.
    assert gateway.metrics.counter_value("trace.finished") == 1
    assert gateway.metrics.counter_value("trace.recorded") == 0


def test_replica_bootstrap_spans_survive_snapshot_reload(
    tmp_path, corpus, request_for
):
    """Churn past the snapshot cadence with no traffic, then request: the
    replica must warm-start from the snapshot file, and the trace must show
    it — ``replica.bootstrap`` stitched into the parent trace."""
    platform = fresh_platform(corpus)
    config = traced_config(
        backend="process",
        snapshot_dir=str(tmp_path),
        snapshot_every_mutations=3,
    )
    with Gateway(platform, config) as gateway:
        warm = gateway.run_many([request_for])[0]
        assert warm.ok, warm.error
        for index in range(9):
            churn_step(platform, corpus, index)
        after = gateway.run_many([request_for])[0]
        assert after.ok, after.error
        traces = gateway.tracer.buffer.snapshot()

    assert gateway.metrics.counter("persist.replica_reloads").value >= 1
    reloaded = [
        trace for trace in traces if "replica.bootstrap" in names_of(trace)
    ]
    assert reloaded, [sorted(names_of(trace)) for trace in traces]
    records = by_name(reloaded[-1])
    assert records["replica"].attrs.get("reloaded") is True
    assert records["replica.bootstrap"].parent_id == records["replica"].span_id
    assert records["replica"].parent_id == records["dispatch"].span_id
    # The bootstrap install restores the snapshot's epoch.
    assert "epoch" in records["replica.bootstrap"].attrs


def test_ops_report_renders_end_to_end(corpus, request_for):
    with Gateway(fresh_platform(corpus), traced_config(backend="thread")) as gateway:
        assert gateway.run_many([request_for])[0].ok
        report = gateway.ops_report()
        stats = gateway.stats()
    assert "== gateway ops report ==" in report
    assert "score.greedy" in report  # the slowest trace renders its tree
    assert "p95=" in report
    assert stats["traces"]["recorded"] == 1
    assert stats["backend"]["name"] == "thread"
    assert stats["pending"] == 0
