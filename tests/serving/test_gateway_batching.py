"""Gateway micro-batching: shared lanes, deadlines, caches, rejections.

Companion to ``tests/discovery/test_batch_parity.py`` (which proves the
kernels bit-identical): these tests prove the *serving* half — batch
lanes form and drain correctly, per-request deadlines hold inside a
shared batch, cache hits never enter a lane, kernel failures fail open
to solo discovery, and rejection bookkeeping is identical whether a
request was refused via ``submit`` or inside a ``run_many`` burst.
"""

import threading
import time

import pytest

from repro.core import Mileena, SearchRequest, WallClock
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import AdmissionError
from repro.relational import KEY, NUMERIC, Relation, Schema
from repro.serving import Gateway, GatewayConfig
from repro.serving.batching import MicroBatcher
from repro.serving.gateway import EXPIRED, OK, REJECTED


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(num_datasets=14, requester_rows=200, seed=1))


def make_request(corpus, **overrides):
    defaults = dict(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=3,
    )
    defaults.update(overrides)
    return SearchRequest(**defaults)


def make_stub_request(value=1.0, **overrides):
    spec = {"zone": KEY, "x": NUMERIC, "y": NUMERIC}
    train = Relation(
        "train",
        {"zone": ["a", "b"], "x": [value, 2.0], "y": [1.0, 2.0]},
        Schema.from_spec(spec),
    )
    test = Relation(
        "test",
        {"zone": ["a", "b"], "x": [1.5, 2.5], "y": [1.5, 2.5]},
        Schema.from_spec(spec),
    )
    return SearchRequest(train=train, test=test, target="y", **overrides)


class _StubCorpus:
    def __init__(self):
        self.epoch = 0


class BatchingPlatform:
    """A platform stub speaking the batched-discovery protocol, with latches."""

    discovery_top_k = 5

    def __init__(self):
        self.kernel_release = threading.Event()
        self.search_release = threading.Event()
        self.kernel_release.set()
        self.search_release.set()
        self.clock = WallClock()
        self.metrics = None
        self.cache = None
        self.corpus = _StubCorpus()
        self.batch_calls = []
        self.search_candidates = []
        self._lock = threading.Lock()

    def discover_candidates_batch(self, requests, top_k=None):
        if not self.kernel_release.wait(timeout=10.0):
            raise TimeoutError("batch kernel was never released")
        with self._lock:
            self.batch_calls.append(len(requests))
        return [[("cand", request.max_augmentations)] for request in requests]

    def search(self, request, candidates=None, train_final_model=True):
        if not self.search_release.wait(timeout=10.0):
            raise TimeoutError("search was never released")
        with self._lock:
            self.search_candidates.append(candidates)
        return (request.max_augmentations, candidates)


class FailingKernelPlatform(BatchingPlatform):
    def discover_candidates_batch(self, requests, top_k=None):
        raise RuntimeError("kernel exploded")


def stub_config(**overrides):
    defaults = dict(cache_results=False, cache_proxy_scores=False)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def batching_config(**overrides):
    defaults = dict(batch_max_size=2, batch_max_wait_ms=2000.0, max_workers=2)
    defaults.update(overrides)
    return stub_config(**defaults)


def test_concurrent_requests_share_one_kernel_call():
    platform = BatchingPlatform()
    with Gateway(platform, batching_config()) as gateway:
        requests = [make_stub_request(max_augmentations=k) for k in (1, 2)]
        responses = gateway.run_many(requests)
        assert [response.status for response in responses] == [OK, OK]
        # Both members got their own slice of the single kernel call.
        assert [response.result for response in responses] == [
            (1, [("cand", 1)]),
            (2, [("cand", 2)]),
        ]
        assert platform.batch_calls == [2]
        metrics = gateway.metrics
        assert metrics.counter_value("gateway.batch.requests") == 2
        assert metrics.counter_value("gateway.batch.batches") == 1
        assert metrics.counter_value("gateway.batch.kernel_failures") == 0
        assert metrics.histogram("gateway.batch.size").count == 1


def test_run_many_ordering_with_interleaved_rejections():
    platform = BatchingPlatform()
    platform.search_release.clear()
    gateway = Gateway(platform, batching_config(max_pending=2))
    try:
        threading.Timer(0.3, platform.search_release.set).start()
        requests = [make_stub_request(max_augmentations=k) for k in (1, 2, 3, 4)]
        responses = gateway.run_many(requests)
        statuses = [response.status for response in responses]
        # Responses stay in submission order: the two admitted requests
        # (which shared one batch lane) first, the overflow rejected.
        assert statuses == [OK, OK, REJECTED, REJECTED]
        assert [response.result for response in responses[:2]] == [
            (1, [("cand", 1)]),
            (2, [("cand", 2)]),
        ]
        assert all(response.error for response in responses[2:])
        assert platform.batch_calls == [2]
        assert gateway.metrics.counter_value("gateway.rejected") == 2
    finally:
        platform.search_release.set()
        gateway.shutdown()


def test_rejection_metrics_identical_for_submit_and_run_many():
    """The fix: submit and run_many do the exact same rejection bookkeeping."""

    def series(metrics):
        return (
            metrics.counter_value("gateway.rejected"),
            metrics.gauge("gateway.pending").value,
        )

    via_submit = Gateway(BatchingPlatform(), batching_config(max_pending=0))
    via_run_many = Gateway(BatchingPlatform(), batching_config(max_pending=0))
    try:
        for _ in range(3):
            with pytest.raises(AdmissionError):
                via_submit.submit(make_stub_request())
        responses = via_run_many.run_many([make_stub_request() for _ in range(3)])
        assert [response.status for response in responses] == [REJECTED] * 3
        assert series(via_submit.metrics) == series(via_run_many.metrics) == (3, 0)
    finally:
        via_submit.shutdown()
        via_run_many.shutdown()


def test_budget_expiry_inside_shared_batch():
    """One member's deadline lapsing mid-batch expires only that member."""
    platform = BatchingPlatform()
    platform.kernel_release.clear()
    gateway = Gateway(
        platform,
        batching_config(batch_max_wait_ms=5000.0, degraded_fallback=False),
    )
    try:
        generous = gateway.submit(
            make_stub_request(value=1.0, max_augmentations=3), 10.0
        )
        # Wait until the leader is parked in its lane, then join it with a
        # request whose budget is far shorter than the (held) kernel.
        deadline = time.monotonic() + 5.0
        while gateway.batcher.depth < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gateway.batcher.depth == 1
        tight = gateway.submit(make_stub_request(value=2.0), 0.2)
        expired = tight.result(timeout=10.0)
        assert expired.status == EXPIRED
        assert gateway.metrics.counter_value("gateway.batch.expired") == 1
        platform.kernel_release.set()
        survived = generous.result(timeout=10.0)
        assert survived.status == OK
        assert survived.result == (3, [("cand", 3)])
        assert platform.batch_calls == [2]
    finally:
        platform.kernel_release.set()
        gateway.shutdown()


def test_cache_hit_short_circuits_batch_lane():
    """Cached fingerprints are served before they ever reach a lane."""
    platform = BatchingPlatform()
    with Gateway(
        platform,
        batching_config(cache_results=True, batch_max_size=4, batch_max_wait_ms=20.0),
    ) as gateway:
        warm = gateway.submit(make_stub_request(value=1.0)).result(timeout=10.0)
        assert warm.status == OK
        assert gateway.metrics.counter_value("gateway.batch.requests") == 1
        repeats = gateway.run_many([make_stub_request(value=1.0) for _ in range(3)])
        assert all(response.status == OK for response in repeats)
        assert all(response.cache_hit for response in repeats)
        assert all(response.result == warm.result for response in repeats)
        # No repeat entered a lane; only a genuinely cold request does.
        assert gateway.metrics.counter_value("gateway.batch.requests") == 1
        cold = gateway.submit(make_stub_request(value=9.0)).result(timeout=10.0)
        assert cold.status == OK
        assert gateway.metrics.counter_value("gateway.batch.requests") == 2


def test_kernel_failure_falls_back_to_solo_discovery():
    """A poisoned batch fails open: members solve solo, nobody fails."""
    platform = FailingKernelPlatform()
    with Gateway(platform, batching_config()) as gateway:
        requests = [make_stub_request(max_augmentations=k) for k in (1, 2)]
        responses = gateway.run_many(requests)
        assert [response.status for response in responses] == [OK, OK]
        # Solo fallback: search received no precomputed candidates.
        assert [response.result for response in responses] == [(1, None), (2, None)]
        assert gateway.metrics.counter_value("gateway.batch.kernel_failures") >= 1


def test_automl_gateways_never_batch(corpus):
    platform = Mileena()
    gateway = Gateway(
        platform, stub_config(run_automl=True, batch_max_size=8)
    )
    try:
        assert gateway.batcher is None
    finally:
        gateway.shutdown()


def test_micro_batcher_lanes_are_epoch_keyed():
    """A corpus epoch bump lands later requests in a fresh lane."""
    platform = BatchingPlatform()
    batcher = MicroBatcher(platform, max_size=4, max_wait_seconds=0.0, metrics=None)
    before = batcher.batch_for("search", make_stub_request(), None)
    platform.corpus.epoch = 1
    after = batcher.batch_for("search", make_stub_request(), None)
    assert before.epoch == 0
    assert after.epoch == 1
    assert platform.batch_calls == [1, 1]
    assert batcher.depth == 0


@pytest.mark.parametrize("backend", ["thread", "async"])
def test_batched_results_match_sequential(corpus, backend):
    """End-to-end: batched serving returns exactly the sequential answers."""
    requests = [
        make_request(corpus, max_augmentations=k, min_improvement=delta)
        for k in (1, 2, 3)
        for delta in (1e-3, 5e-2)
    ]
    sequential_platform = Mileena()
    batched_platform = Mileena()
    for relation in corpus.providers:
        sequential_platform.register_dataset(relation)
        batched_platform.register_dataset(relation)
    sequential = [sequential_platform.search(request) for request in requests]
    config = GatewayConfig(
        max_workers=4, backend=backend, batch_max_size=4, batch_max_wait_ms=50.0
    )
    with Gateway(batched_platform, config) as gateway:
        responses = gateway.run_many(requests)
    assert [response.status for response in responses] == [OK] * len(requests)
    assert gateway.metrics.counter_value("gateway.batch.requests") == len(requests)
    for expected, response in zip(sequential, responses):
        got = response.result
        assert [c.dataset for c in got.plan.candidates] == [
            c.dataset for c in expected.plan.candidates
        ]
        assert got.proxy_test_r2 == expected.proxy_test_r2
        assert got.final_test_r2 == expected.final_test_r2
