"""Tests for the sketch store's reverse indices (feature-set and join-key)."""

import pytest

from repro.exceptions import SketchError
from repro.semiring.covariance import CovarianceElement
from repro.sketches import SketchStore
from repro.sketches.sketch import RelationSketch


def make_sketch(name, features, join_keys=()):
    return RelationSketch(
        dataset=name,
        features=tuple(features),
        total=CovarianceElement.zero(tuple(features)),
        keyed={key: {} for key in join_keys},
    )


@pytest.fixture
def store():
    store = SketchStore()
    store.add(make_sketch("a", ["x", "y"], ["zone"]))
    store.add(make_sketch("b", ["x", "y"], ["zone", "month"]))
    store.add(make_sketch("c", ["z"], ["month"]))
    return store


def test_with_join_key_uses_reverse_index(store):
    assert [s.dataset for s in store.with_join_key("zone")] == ["a", "b"]
    assert [s.dataset for s in store.with_join_key("month")] == ["b", "c"]
    assert store.with_join_key("unknown") == []


def test_unionable_with_matches_exact_feature_sets(store):
    assert [s.dataset for s in store.unionable_with(("x", "y"))] == ["a", "b"]
    # Order of the queried tuple must not matter (sets are compared).
    assert [s.dataset for s in store.unionable_with(("y", "x"))] == ["a", "b"]
    assert [s.dataset for s in store.unionable_with(("z",))] == ["c"]
    assert store.unionable_with(("x",)) == []


def test_remove_updates_reverse_indices(store):
    store.remove("b")
    assert [s.dataset for s in store.with_join_key("zone")] == ["a"]
    assert [s.dataset for s in store.with_join_key("month")] == ["c"]
    assert [s.dataset for s in store.unionable_with(("x", "y"))] == ["a"]
    store.remove("a")
    assert store.with_join_key("zone") == []
    assert store.unionable_with(("x", "y")) == []


def test_replace_reindexes_changed_sketch(store):
    with pytest.raises(SketchError):
        store.add(make_sketch("a", ["p"], ["day"]))
    store.add(make_sketch("a", ["p"], ["day"]), replace=True)
    assert [s.dataset for s in store.with_join_key("zone")] == ["b"]
    assert [s.dataset for s in store.with_join_key("day")] == ["a"]
    assert [s.dataset for s in store.unionable_with(("p",))] == ["a"]
    assert [s.dataset for s in store.unionable_with(("x", "y"))] == ["b"]


def test_replace_moves_dataset_to_end_of_scan_order(store):
    """Replacing re-registers at the end, keeping index order == scan order."""
    store.add(make_sketch("a", ["x", "y"], ["zone"]), replace=True)
    assert store.datasets() == ["b", "c", "a"]
    assert [s.dataset for s in store.with_join_key("zone")] == ["b", "a"]
    assert [s.dataset for s in store.unionable_with(("x", "y"))] == ["b", "a"]
    # Invariant: indexed lookups match a linear scan exactly.
    scan = [s for s in store.sketches.values() if "zone" in s.keyed]
    assert store.with_join_key("zone") == scan


def test_preseeded_store_builds_indices():
    sketch = make_sketch("seeded", ["u"], ["zone"])
    store = SketchStore(sketches={"seeded": sketch})
    assert [s.dataset for s in store.with_join_key("zone")] == ["seeded"]
    assert [s.dataset for s in store.unionable_with(("u",))] == ["seeded"]


def test_lookups_match_linear_scan(store):
    """The reverse indices must agree with the naive full scan."""
    for key in ("zone", "month", "day", "missing"):
        scan = [s for s in store.sketches.values() if key in s.keyed]
        assert store.with_join_key(key) == scan
    for features in (("x", "y"), ("z",), ("q",)):
        target = set(features)
        scan = [s for s in store.sketches.values() if set(s.features) == target]
        assert store.unionable_with(features) == scan
