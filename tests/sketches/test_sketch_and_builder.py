"""Tests for relation sketches, the builder, and the store."""

import numpy as np
import pytest

from repro.exceptions import SketchError
from repro.privacy import PrivacyBudget
from repro.relational import KEY, NUMERIC, Relation, Schema, join, union
from repro.semiring import covariance_aggregate
from repro.sketches import (
    FeatureScaling,
    RelationSketch,
    SketchBuilder,
    SketchStore,
    horizontal_augment,
    vertical_augment,
)


@pytest.fixture
def listings():
    rng = np.random.default_rng(0)
    zones = [f"z{i % 5}" for i in range(100)]
    return Relation(
        "listings",
        {
            "zone": zones,
            "price": rng.uniform(0, 100, size=100),
            "beds": rng.integers(1, 5, size=100).astype(float),
        },
        Schema.from_spec({"zone": KEY, "price": NUMERIC, "beds": NUMERIC}),
    )


@pytest.fixture
def zone_stats():
    return Relation(
        "zone_stats",
        {"zone": [f"z{i}" for i in range(5)], "income": [10.0, 20.0, 30.0, 40.0, 50.0]},
        Schema.from_spec({"zone": KEY, "income": NUMERIC}),
    )


def test_feature_scaling_round_trip():
    scaling = FeatureScaling(10.0, 30.0)
    assert scaling.scale(20.0) == pytest.approx(0.5)
    assert scaling.unscale(0.5) == pytest.approx(20.0)
    degenerate = FeatureScaling(5.0, 5.0)
    assert degenerate.span == 1.0


def test_builder_builds_total_and_keyed(listings):
    sketch = SketchBuilder().build(listings)
    assert sketch.dataset == "listings"
    assert set(sketch.features) == {"price", "beds"}
    assert sketch.row_count == 100
    assert "zone" in sketch.join_keys
    assert sketch.key_cardinality("zone") == 5
    # Scaled features live in [0, 1]: the total sums are bounded by the count.
    assert 0 <= sketch.total.sum_of("price") <= 100


def test_builder_feature_validation(listings):
    with pytest.raises(SketchError):
        SketchBuilder().build(listings, features=["missing"])
    keys_only = listings.project(["zone"])
    with pytest.raises(SketchError):
        SketchBuilder().build(keys_only)


def test_builder_respects_key_cardinality_limit(listings):
    unique_keys = listings.with_column("row_id", [f"r{i}" for i in range(100)], dtype="key")
    sketch = SketchBuilder(max_key_cardinality=10).build(unique_keys)
    assert "row_id" not in sketch.join_keys
    assert "zone" in sketch.join_keys


def test_builder_reuses_provided_scaling(listings):
    builder = SketchBuilder()
    first = builder.build(listings)
    second = builder.build(listings, scaling=first.scaling)
    assert first.scaling["price"].minimum == second.scaling["price"].minimum
    assert first.total.is_close(second.total)


def test_sketch_total_features_must_match():
    element = covariance_aggregate(
        Relation("r", {"a": [1.0, 2.0]}), ["a"]
    )
    with pytest.raises(SketchError):
        RelationSketch(dataset="r", features=("a", "b"), total=element)


def test_keyed_sketch_lookup_errors(listings):
    sketch = SketchBuilder().build(listings)
    with pytest.raises(SketchError):
        sketch.keyed_sketch("nope")
    description = sketch.describe()
    assert description["dataset"] == "listings"
    assert description["private"] is False


def test_private_sketch_marks_metadata(listings):
    sketch = SketchBuilder().build(listings, budget=PrivacyBudget(1.0, 1e-6))
    assert sketch.private
    assert sketch.epsilon == 1.0
    # Noise was added: totals differ from the exact sketch.
    exact = SketchBuilder().build(listings)
    assert not np.allclose(sketch.total.products, exact.total.products)


def test_horizontal_augment_matches_union(listings):
    builder = SketchBuilder()
    # Use shared scaling so both halves are on the same scale.
    full_sketch = builder.build(listings)
    first = listings.take(range(0, 50), name="first")
    second = listings.take(range(50, 100), name="second")
    sketch_a = builder.build(first, scaling=full_sketch.scaling)
    sketch_b = builder.build(second, scaling=full_sketch.scaling)
    combined = horizontal_augment(sketch_a.total, sketch_b.total)
    assert combined.is_close(full_sketch.total, tolerance=1e-6)


def test_vertical_augment_matches_materialized_join(listings, zone_stats):
    builder = SketchBuilder()
    listing_sketch = builder.build(listings)
    stats_sketch = builder.build(zone_stats)
    joined_groups = vertical_augment(
        listing_sketch.keyed_sketch("zone"), stats_sketch.keyed_sketch("zone")
    )
    total = None
    for element in joined_groups.values():
        total = element if total is None else total + element

    # Materialise the same join on the scaled relations to compare.
    scaled_listings, _ = builder._scale(listings, ["price", "beds"])
    scaled_stats, _ = builder._scale(zone_stats, ["income"])
    materialized = join(scaled_listings, scaled_stats, on="zone")
    expected = covariance_aggregate(materialized, ["price", "beds", "income"])
    assert total.is_close(expected, tolerance=1e-6)


def test_store_add_get_remove(listings):
    store = SketchStore()
    sketch = SketchBuilder().build(listings)
    store.add(sketch)
    assert "listings" in store
    assert len(store) == 1
    assert store.get("listings").dataset == "listings"
    with pytest.raises(SketchError):
        store.add(sketch)
    store.add(sketch, replace=True)
    with pytest.raises(SketchError):
        store.get("missing")
    assert store.datasets() == ["listings"]
    assert [s.dataset for s in store.with_join_key("zone")] == ["listings"]
    assert store.unionable_with(sketch.features)[0].dataset == "listings"
    store.remove("listings")
    assert len(store) == 0
