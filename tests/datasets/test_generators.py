"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    AirbnbSpec,
    CausalStudySpec,
    CorpusSpec,
    generate_airbnb,
    generate_causal_study,
    generate_corpus,
    make_keyed_relation,
    make_regression_relation,
    train_test_relations,
)
from repro.exceptions import DatasetError
from repro.ml import LinearRegression


def test_make_regression_relation_shape_and_signal():
    relation = make_regression_relation("r", n_rows=150, n_features=4, noise=0.05, seed=1)
    assert len(relation) == 150
    assert set(relation.columns) == {"f0", "f1", "f2", "f3", "y"}
    model = LinearRegression().fit(relation.numeric_matrix(["f0", "f1", "f2", "f3"]), relation["y"])
    assert model.score(relation.numeric_matrix(["f0", "f1", "f2", "f3"]), relation["y"]) > 0.95


def test_make_regression_relation_validation():
    with pytest.raises(DatasetError):
        make_regression_relation(n_rows=0)
    with pytest.raises(DatasetError):
        make_regression_relation(n_features=2, coefficients=np.ones(3))


def test_make_keyed_relation():
    relation = make_keyed_relation(
        "dim", "zone", ["a", "b"], {"income": np.array([1.0, 2.0])}, rows_per_key=3
    )
    assert len(relation) == 6
    assert relation.schema["zone"].is_key
    with pytest.raises(DatasetError):
        make_keyed_relation("dim", "zone", ["a"], {"x": np.array([1.0])}, rows_per_key=0)


def test_train_test_relations_split():
    relation = make_regression_relation("data", n_rows=100)
    train, test = train_test_relations(relation, test_fraction=0.25, seed=0)
    assert len(train) + len(test) == 100
    assert train.name == "data_train"
    assert test.name == "data_test"


def test_corpus_spec_validation():
    with pytest.raises(DatasetError):
        CorpusSpec(num_datasets=5, num_signal_join=4, num_signal_union=4)
    with pytest.raises(DatasetError):
        CorpusSpec(num_zones=1)


def test_generate_corpus_structure():
    spec = CorpusSpec(num_datasets=30, requester_rows=200, seed=3)
    corpus = generate_corpus(spec)
    assert len(corpus.providers) == 30
    assert corpus.target == "demand"
    assert set(corpus.signal_join_names) <= set(corpus.provider_names)
    assert set(corpus.signal_union_names) <= set(corpus.provider_names)
    assert len(corpus.distractor_names) == 30 - len(corpus.signal_join_names) - len(
        corpus.signal_union_names
    )
    assert "zone" in corpus.train.columns and "month" in corpus.train.columns
    assert corpus.provider("zone_income_stats").name == "zone_income_stats"
    with pytest.raises(DatasetError):
        corpus.provider("nope")


def test_corpus_signal_datasets_carry_the_signal():
    """Joining the signal tables should explain far more variance than local features."""
    corpus = generate_corpus(CorpusSpec(num_datasets=20, requester_rows=400, seed=0))
    train, test = corpus.train, corpus.test

    local_features = ["local_a", "local_b"]
    model = LinearRegression().fit(train.numeric_matrix(local_features), train["demand"])
    local_r2 = model.score(test.numeric_matrix(local_features), test["demand"])

    # Materialise the joins with the two zone signal tables (reduced to one
    # row per key first, as the platform's materialisation path does).
    from repro.core import reduce_to_key

    zone_income = reduce_to_key(corpus.provider("zone_income_stats"), "zone", ["median_income"])
    month_weather = reduce_to_key(corpus.provider("month_weather"), "month", ["avg_temperature"])
    augmented_train = train.join(zone_income, on="zone").join(month_weather, on="month")
    augmented_test = test.join(zone_income, on="zone").join(month_weather, on="month")
    features = local_features + ["median_income", "avg_temperature"]
    model = LinearRegression().fit(augmented_train.numeric_matrix(features), augmented_train["demand"])
    augmented_r2 = model.score(augmented_test.numeric_matrix(features), augmented_test["demand"])
    assert augmented_r2 > local_r2 + 0.2


def test_generate_corpus_deterministic_for_seed():
    a = generate_corpus(CorpusSpec(num_datasets=15, seed=7))
    b = generate_corpus(CorpusSpec(num_datasets=15, seed=7))
    np.testing.assert_allclose(a.train["demand"], b.train["demand"])
    assert a.provider_names == b.provider_names


def test_generate_airbnb_schema_and_signal():
    listings = generate_airbnb(AirbnbSpec(num_listings=300, seed=0))
    assert len(listings) == 300
    assert "size_text" in listings.columns
    assert "price" in listings.schema.numeric_names
    # Raw numeric columns alone explain little of the price.
    raw = ["minimum_nights", "number_of_reviews"]
    model = LinearRegression().fit(listings.numeric_matrix(raw), listings["price"])
    assert model.score(listings.numeric_matrix(raw), listings["price"]) < 0.3
    with pytest.raises(DatasetError):
        AirbnbSpec(num_listings=5)


def test_generate_causal_study_structure():
    study = generate_causal_study(CausalStudySpec(num_students=2000, seed=0))
    assert len(study.r1) == 2000
    assert set(study.r1.columns) == {"student_id", "T", "Y"}
    assert set(study.r2.columns) == {"student_id", "T", "G"}
    assert set(study.r3.columns) == {"student_id", "P", "A", "Y"}
    assert 0.0 < study.ate_true < 1.0
    assert study.ey_do_t1 > study.ey_do_t0
    with pytest.raises(DatasetError):
        CausalStudySpec(num_students=10)


def test_causal_study_confounding_biases_naive_estimate():
    """The naive E[Y|T=1] - E[Y|T=0] should over-estimate the true ATE."""
    study = generate_causal_study(CausalStudySpec(num_students=30_000, seed=1))
    treatment = np.asarray(study.r1["T"])
    outcome = np.asarray(study.r1["Y"])
    naive = outcome[treatment == 1].mean() - outcome[treatment == 0].mean()
    assert naive > study.ate_true + 0.02
