"""Workload helpers shared by the chaos scenarios (importable by name)."""

from repro.core import Mileena

INITIAL = 8


def fresh_platform(corpus, **kwargs):
    platform = Mileena.sharded(num_shards=2, **kwargs)
    for relation in corpus.providers[:INITIAL]:
        platform.register_dataset(relation)
    return platform


def result_identity(result):
    """A bit-exact fingerprint of a search result (plan + trained model)."""
    report = result.final_report
    return (
        tuple((c.kind, c.dataset, c.join_key) for c in result.plan.candidates),
        result.proxy_test_r2,
        report.model.model_.intercept,
        report.model.model_.coefficients.tobytes(),
    )
