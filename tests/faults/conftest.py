"""Shared fixtures for the deterministic chaos suite.

Every scenario follows the same shape: compute a no-fault baseline, arm a
seeded :class:`~repro.faults.FaultPlan`, re-run the workload through the
fault, and assert the recovered result is *bit-identical* to the
baseline.  ``CHAOS_SEED`` (CI runs 7, 11, 23) seeds the plans, so the
corruption positions and jitter differ per run while the assertions stay
exact.
"""

import os

import pytest

from repro.core import SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.faults import disarm

_SPEC = CorpusSpec(num_datasets=14, requester_rows=110, provider_rows=110, seed=7)


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "7"))


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="session")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )


@pytest.fixture(autouse=True)
def always_disarm():
    """No plan may outlive its test — the tier-1 suite runs fault free."""
    yield
    disarm()
