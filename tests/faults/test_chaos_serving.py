"""Deterministic chaos scenarios against the serving stack.

Each scenario computes a no-fault baseline, injects one seeded fault, and
asserts the gateway recovers with a *bit-identical* answer — plus the
telemetry (counters, spans) an operator would use to see the recovery.
"""

from chaos_helpers import INITIAL, fresh_platform, result_identity

from repro.faults import FaultPlan, armed
from repro.serving import Gateway, GatewayConfig


def names_of(trace):
    return {record.name for record in trace.records}


def test_worker_killed_mid_request_recovers_bit_identical(
    corpus, request_for, chaos_seed
):
    """A replica killed while holding the request: the supervisor respawns
    the pool, re-dispatches the envelope, and the caller never notices —
    the answer matches the no-fault run byte for byte."""
    expected = result_identity(fresh_platform(corpus).search(request_for))
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        process_workers=1,
        backend="process",
        trace_sample_rate=1.0,
    )
    plan = FaultPlan(seed=chaos_seed).crash("replica.dispatch", on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan) as injector:
            response = gateway.run_many([request_for])[0]
        traces = gateway.tracer.buffer.snapshot()
    assert response.ok, response.error
    assert not response.degraded
    assert result_identity(response.result) == expected
    assert injector.fired == [("replica.dispatch", 1, "crash")]
    assert gateway.metrics.counter_value("faults.replica_restarts") >= 1
    assert gateway.metrics.counter_value("faults.redispatches") >= 1
    # The restart is visible in the request's own trace, fully connected.
    restarted = [t for t in traces if "replica.restart" in names_of(t)]
    assert restarted, [sorted(names_of(t)) for t in traces]
    trace = restarted[0]
    ids = {record.span_id for record in trace.records}
    orphans = [
        record.name
        for record in trace.records
        if record.parent_id is not None and record.parent_id not in ids
    ]
    assert orphans == [], orphans


def test_slow_compute_is_hedged_and_result_identical(corpus, request_for, chaos_seed):
    """One pathologically slow compute: the hedge fires after
    ``hedge_after_seconds`` and the fast secondary's answer wins."""
    expected = result_identity(fresh_platform(corpus).search(request_for))
    platform = fresh_platform(corpus)
    config = GatewayConfig(max_workers=2, hedge_after_seconds=0.05)
    plan = FaultPlan(seed=chaos_seed).delay("gateway.compute", 2.0, on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan):
            response = gateway.run_many([request_for])[0]
    assert response.ok, response.error
    assert result_identity(response.result) == expected
    assert gateway.metrics.counter_value("gateway.hedges") >= 1
    assert gateway.metrics.counter_value("gateway.hedge_wins") >= 1


def test_transient_compute_fault_is_retried(corpus, request_for, chaos_seed):
    """An injected transient exception on the first attempt: the retry
    policy backs off (within budget) and the second attempt answers."""
    expected = result_identity(fresh_platform(corpus).search(request_for))
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        retry_backoff_seconds=0.01,
        retry_jitter_seed=chaos_seed,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan):
            response = gateway.run_many([request_for])[0]
    assert response.ok, response.error
    assert result_identity(response.result) == expected
    assert gateway.metrics.counter_value("gateway.retries") >= 1


def test_open_breaker_serves_last_known_good_degraded(
    corpus, request_for, chaos_seed
):
    """Sustained failures trip the breaker; with it open, requests are
    rejected fast and answered from the last-known-good cache — stale by
    contract, flagged ``degraded=True``."""
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=1,
        retry_max_attempts=1,
        breaker_failure_threshold=2,
        trace_sample_rate=1.0,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=None)
    with Gateway(platform, config) as gateway:
        primed = gateway.run_many([request_for])[0]
        assert primed.ok, primed.error
        # Mutate the corpus so the epoch-scoped result cache cannot answer;
        # only the LKG cache (keyed without the epoch) still can.
        platform.register_dataset(corpus.providers[INITIAL])
        with armed(plan):
            first = gateway.run_many([request_for])[0]
            second = gateway.run_many([request_for])[0]
            third = gateway.run_many([request_for])[0]
        traces = gateway.tracer.buffer.snapshot()
    assert first.status == "failed" and second.status == "failed"
    assert third.ok and third.degraded
    assert result_identity(third.result) == result_identity(primed.result)
    assert gateway.metrics.counter_value("gateway.breaker.open_total") >= 1
    assert gateway.metrics.counter_value("gateway.breaker.fast_rejections") >= 1
    assert gateway.metrics.counter_value("gateway.degraded") >= 1
    degraded = [t for t in traces if "request.degraded" in names_of(t)]
    assert degraded, [sorted(names_of(t)) for t in traces]


def test_open_breaker_falls_back_to_reduced_recall_search(
    corpus, request_for, chaos_seed
):
    """With nothing in last-known-good, an open breaker degrades to a
    cheap in-process reduced-recall search instead of failing."""
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=1,
        retry_max_attempts=1,
        breaker_failure_threshold=1,
        degraded_top_k=4,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=None)
    with Gateway(platform, config) as gateway:
        with armed(plan):
            first = gateway.run_many([request_for])[0]
            second = gateway.run_many([request_for])[0]
    assert first.status == "failed"
    assert second.ok and second.degraded, second.error
    # Reduced recall, not wrong: the plan comes from the same platform,
    # just over far fewer discovery candidates and with no final model.
    reference = fresh_platform(corpus).search(
        request_for, train_final_model=False, discovery_top_k=4
    )
    assert [
        (c.kind, c.dataset, c.join_key) for c in second.result.plan.candidates
    ] == [(c.kind, c.dataset, c.join_key) for c in reference.plan.candidates]
    assert gateway.metrics.counter_value("gateway.degraded") >= 1
