"""Chaos scenarios against the durable-state layer.

A corrupt or truncated newest snapshot must never brick a restart: the
loader quarantines it (``snapshot.bin.corrupt``) and falls back along the
retained version chain, replaying the sealed WAL segments to reach the
exact pre-crash state.  A corrupt WAL frame bounds recovery to the valid
prefix — never garbage, never a crash.
"""

import pytest

from chaos_helpers import result_identity

from repro.core import Mileena
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import SnapshotCorrupt
from repro.faults import FaultPlan, armed

_SPEC = CorpusSpec(num_datasets=12, requester_rows=100, provider_rows=100, seed=9)


@pytest.fixture(scope="module")
def persist_corpus():
    return generate_corpus(_SPEC)


@pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
def test_truncated_newest_snapshot_falls_back_to_chain(
    tmp_path, persist_corpus, chaos_seed, fraction
):
    """Tear the newest snapshot at a quarter boundary: load quarantines it
    and recovers bit-identically from the previous version + sealed WAL."""
    platform = Mileena.sharded(
        num_shards=2, snapshot_dir=tmp_path, snapshot_every_mutations=3
    )
    for relation in persist_corpus.providers[:8]:
        platform.register_dataset(relation)
    # Cadence snapshots landed at epochs 3 and 6; epochs 7-8 sit in the
    # live WAL.  Now force one more snapshot whose bytes get truncated.
    plan = FaultPlan(seed=chaos_seed).truncate(
        "snapshot.write", fraction, on_hit=1
    )
    with armed(plan) as injector:
        platform.snapshots.snapshot()
    assert injector.fired == [("snapshot.write", 1, "truncate")]

    restored = Mileena.load(tmp_path)
    assert (tmp_path / "snapshot.bin.corrupt").exists()
    assert not (tmp_path / "snapshot.bin").exists()
    assert restored.corpus.epoch == platform.corpus.epoch
    assert restored.corpus.names() == platform.corpus.names()

    request = _request(persist_corpus)
    assert result_identity(restored.search(request)) == result_identity(
        platform.search(request)
    )


def test_corrupt_wal_frame_recovers_valid_prefix(
    tmp_path, persist_corpus, chaos_seed
):
    """Flip bytes in one WAL frame: recovery applies every record before
    it and none after — the loaded state equals a reference platform that
    saw exactly the surviving mutations."""
    providers = persist_corpus.providers
    platform = Mileena()
    platform.attach_snapshots(tmp_path, every_mutations=100)
    for relation in providers[:3]:
        platform.register_dataset(relation)
    platform.snapshots.snapshot()  # baseline at epoch 3, WAL reset
    plan = FaultPlan(seed=chaos_seed).corrupt("wal.append", on_hit=3)
    with armed(plan) as injector:
        for relation in providers[3:8]:
            platform.register_dataset(relation)
    assert injector.fired == [("wal.append", 3, "corrupt")]

    restored = Mileena.load(tmp_path)
    # Hits 1-2 (epochs 4-5) survive; the corrupt frame at epoch 6 stops
    # replay, so epochs 6-8 are lost — the price of a torn log, bounded.
    assert restored.corpus.epoch == 5
    assert set(restored.corpus.names()) == {r.name for r in providers[:5]}


def test_every_snapshot_corrupt_raises_typed_error(tmp_path, persist_corpus, chaos_seed):
    """With the chain disabled and the only snapshot corrupt there is
    nothing to fall back to: the loader quarantines it and raises
    :class:`SnapshotCorrupt`."""
    platform = Mileena()
    platform.attach_snapshots(tmp_path, every_mutations=100, keep_snapshots=0)
    for relation in persist_corpus.providers[:2]:
        platform.register_dataset(relation)
    plan = FaultPlan(seed=chaos_seed).truncate("snapshot.write", 0.5, on_hit=None)
    with armed(plan):
        platform.snapshots.snapshot()
    with pytest.raises(SnapshotCorrupt):
        Mileena.load(tmp_path)
    assert (tmp_path / "snapshot.bin.corrupt").exists()


def _request(corpus):
    from repro.core import SearchRequest

    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )
