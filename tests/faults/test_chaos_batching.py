"""Deterministic chaos against the micro-batching stage.

A batch lane couples the fates of several requests; these scenarios
verify the coupling is severed exactly where it should be.  A worker
killed while holding a batched envelope is respawned and the envelope
re-dispatched; an injected compute fault fails only the request it hit;
a poisoned batch kernel fails open to solo discovery.  In every case the
response list keeps one response per request, in submission order, and
every successful answer is bit-identical to the no-fault baseline.
"""

from chaos_helpers import fresh_platform, result_identity

from repro.core import SearchRequest
from repro.faults import FaultPlan, armed
from repro.serving import Gateway, GatewayConfig
from repro.serving.gateway import FAILED, OK


def batch_requests(corpus, count=3):
    return [
        SearchRequest(
            train=corpus.train,
            test=corpus.test,
            target=corpus.target,
            max_augmentations=k,
        )
        for k in range(1, count + 1)
    ]


def baselines_for(corpus, requests):
    platform = fresh_platform(corpus)
    return [result_identity(platform.search(request)) for request in requests]


def assert_no_dup_drop_reorder(responses, requests):
    assert len(responses) == len(requests)
    assert len({response.request_id for response in responses}) == len(responses)


def test_worker_killed_mid_batch_redispatches_bit_identical(corpus, chaos_seed):
    """A replica crash while holding a batched envelope: the supervisor
    respawns the pool and re-dispatches; every member still answers,
    byte for byte what the no-fault run produces."""
    requests = batch_requests(corpus, count=2)
    expected = baselines_for(corpus, requests)
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        process_workers=1,
        backend="process",
        batch_max_size=2,
        batch_max_wait_ms=250.0,
    )
    plan = FaultPlan(seed=chaos_seed).crash("replica.dispatch", on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan) as injector:
            responses = gateway.run_many(requests)
    assert_no_dup_drop_reorder(responses, requests)
    assert [response.status for response in responses] == [OK, OK]
    assert [result_identity(response.result) for response in responses] == expected
    assert injector.fired == [("replica.dispatch", 1, "crash")]
    assert gateway.metrics.counter_value("faults.replica_restarts") >= 1
    assert gateway.metrics.counter_value("gateway.batch.requests") >= len(requests)


def test_compute_fault_fails_only_the_hit_member(corpus, chaos_seed):
    """An injected deterministic fault at the compute stage, no retries
    left: exactly one member of the burst fails, its lane-mates answer
    bit-identically, and nothing is duplicated, dropped, or reordered."""
    requests = batch_requests(corpus, count=3)
    expected = baselines_for(corpus, requests)
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=3,
        retry_max_attempts=1,
        degraded_fallback=False,
        batch_max_size=3,
        batch_max_wait_ms=100.0,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan):
            responses = gateway.run_many(requests)
    assert_no_dup_drop_reorder(responses, requests)
    statuses = [response.status for response in responses]
    assert statuses.count(FAILED) == 1, statuses
    assert statuses.count(OK) == len(requests) - 1, statuses
    for response, baseline in zip(responses, expected):
        if response.status == OK:
            assert result_identity(response.result) == baseline
        else:
            assert response.error


def test_batch_kernel_fault_fails_open_to_solo_discovery(corpus, chaos_seed):
    """A fault inside the shared kernel call poisons only the batch, not
    its members: everyone falls back to solo discovery and answers
    bit-identically, with the failure visible on the kernel counter."""
    requests = batch_requests(corpus, count=3)
    expected = baselines_for(corpus, requests)
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=3,
        batch_max_size=3,
        batch_max_wait_ms=100.0,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.batch_kernel", on_hit=1)
    with Gateway(platform, config) as gateway:
        with armed(plan):
            responses = gateway.run_many(requests)
    assert_no_dup_drop_reorder(responses, requests)
    assert [response.status for response in responses] == [OK] * len(requests)
    assert [result_identity(response.result) for response in responses] == expected
    assert gateway.metrics.counter_value("gateway.batch.kernel_failures") >= 1
