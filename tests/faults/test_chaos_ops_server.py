"""Chaos: the ops surface stays consistent while faults fire under scrape load.

The ops server's contract under failure is the same as the gateway's:
scrapes keep answering parseable OpenMetrics with monotone counters, and
``/health`` reports the degradation instead of joining it.  Runs under
the CI chaos matrix (``CHAOS_SEED`` ∈ {7, 11, 23}) — the fault positions
shift per seed while every assertion stays exact.
"""

import json
import threading
from urllib.error import HTTPError
from urllib.request import urlopen

from chaos_helpers import fresh_platform, result_identity

from repro.faults import FaultPlan, armed
from repro.obs import parse_openmetrics
from repro.serving import Gateway, GatewayConfig


def fetch(url: str) -> tuple[int, str]:
    try:
        with urlopen(url, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except HTTPError as error:
        return error.code, error.read().decode("utf-8")


def test_scrapes_stay_consistent_through_transient_faults(
    corpus, request_for, chaos_seed
):
    """A scraper hammers /metrics and /health while injected transient
    compute faults force retries: the request still answers bit-identical
    to the no-fault baseline, every scrape parses, the request counter
    never regresses, and no handler errors fire."""
    expected = result_identity(fresh_platform(corpus).search(request_for))
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=2,
        retry_backoff_seconds=0.01,
        retry_jitter_seed=chaos_seed,
        ops_port=0,
        trace_sample_rate=1.0,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=1)

    with Gateway(platform, config) as gateway:
        base = gateway.ops_server.url
        stop = threading.Event()
        errors: list[Exception] = []
        totals: list[float] = []

        def scraper() -> None:
            try:
                while not stop.is_set():
                    status, body = fetch(f"{base}/metrics")
                    assert status == 200
                    families = parse_openmetrics(body)
                    totals.append(
                        families["gateway_requests"]["samples"][
                            ("gateway_requests_total", ())
                        ]
                    )
                    health_status, health_body = fetch(f"{base}/health")
                    assert health_status in (200, 503)
                    json.loads(health_body)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        thread = threading.Thread(target=scraper, daemon=True)
        thread.start()
        with armed(plan):
            response = gateway.run_many([request_for])[0]
        stop.set()
        thread.join(timeout=10.0)

        assert response.ok, response.error
        assert result_identity(response.result) == expected
        assert gateway.metrics.counter_value("gateway.retries") >= 1
        assert errors == []
        assert totals == sorted(totals), "request counter regressed mid-fault"
        assert gateway.metrics.counter_value("ops.http.errors") == 0

        # After the fault clears, the exposition is still coherent and the
        # retry telemetry shows up in it.
        status, body = fetch(f"{base}/metrics")
        assert status == 200
        families = parse_openmetrics(body)
        assert families["gateway_retries"]["samples"][
            ("gateway_retries_total", ())
        ] >= 1


def test_health_pages_while_breaker_holds_open(corpus, request_for, chaos_seed):
    """Sustained injected failures trip the dispatch breaker: /health
    reports 503 with the open breaker as evidence while the exposition
    keeps parsing, then recovery clears it."""
    platform = fresh_platform(corpus)
    config = GatewayConfig(
        max_workers=1,
        retry_max_attempts=1,
        breaker_failure_threshold=2,
        breaker_recovery_seconds=30.0,
        cache_results=False,
        cache_proxy_scores=False,
        ops_port=0,
    )
    plan = FaultPlan(seed=chaos_seed).raise_("gateway.compute", on_hit=None)
    with Gateway(platform, config) as gateway:
        base = gateway.ops_server.url
        assert fetch(f"{base}/health")[0] == 200
        with armed(plan):
            responses = gateway.run_many([request_for] * 4)
        assert not any(response.ok and not response.degraded for response in responses)
        assert gateway.metrics.counter_value("gateway.breaker.open_total") >= 1

        status, body = fetch(f"{base}/health")
        assert status == 503
        payload = json.loads(body)
        assert payload["breaker_open"] or payload["paging_slos"]

        status, body = fetch(f"{base}/metrics")
        assert status == 200
        families = parse_openmetrics(body)
        assert families["gateway_breaker_state"]["samples"][
            ("gateway_breaker_state", ())
        ] == 2
