"""Unit contract of the fault-injection registry itself."""

import pytest

from repro.exceptions import InjectedFault
from repro.faults import (
    FaultPlan,
    FaultSpec,
    active_injector,
    armed,
    fault_bytes,
    fault_point,
    pending_fault,
)


def test_no_plan_armed_is_inert():
    assert active_injector() is None
    fault_point("gateway.compute")  # no-op, no error
    payload = b"untouched"
    assert fault_bytes("wal.append", payload) is payload
    assert pending_fault("replica.dispatch") is None


def test_hits_are_counted_per_site_and_specs_fire_once():
    plan = FaultPlan(seed=3).raise_("a.site", on_hit=2)
    with armed(plan) as injector:
        fault_point("a.site")  # hit 1: no match
        with pytest.raises(InjectedFault):
            fault_point("a.site")  # hit 2: fires
        fault_point("a.site")  # hit 3: no match again
        fault_point("other.site")
        assert injector.hits("a.site") == 3
        assert injector.hits("other.site") == 1
        assert injector.fired == [("a.site", 2, "raise")]
    assert active_injector() is None


def test_every_hit_spec_fires_repeatedly():
    plan = FaultPlan().raise_("x", on_hit=None)
    with armed(plan):
        for _ in range(3):
            with pytest.raises(InjectedFault):
                fault_point("x")


def test_truncate_keeps_fraction_prefix():
    data = bytes(range(100))
    spec = FaultSpec("s", "truncate", fraction=0.25)
    assert spec.transform(data, 1) == data[:25]


def test_corrupt_is_deterministic_per_seed_site_and_hit():
    data = bytes(100)
    one = FaultSpec("s", "corrupt", seed=11, flips=4).transform(data, 1)
    two = FaultSpec("s", "corrupt", seed=11, flips=4).transform(data, 1)
    other_seed = FaultSpec("s", "corrupt", seed=12, flips=4).transform(data, 1)
    other_hit = FaultSpec("s", "corrupt", seed=11, flips=4).transform(data, 2)
    assert one == two
    assert one != data
    assert one != other_seed or one != other_hit


def test_fault_bytes_transforms_only_matching_hits():
    plan = FaultPlan(seed=5).corrupt("w", on_hit=2)
    data = b"\x00" * 32
    with armed(plan):
        assert fault_bytes("w", data) == data  # hit 1 untouched
        assert fault_bytes("w", data) != data  # hit 2 corrupted
        assert fault_bytes("w", data) == data  # hit 3 untouched


def test_pending_fault_counts_in_parent_and_returns_spec():
    plan = FaultPlan().crash("replica.dispatch", on_hit=1)
    with armed(plan) as injector:
        spec = pending_fault("replica.dispatch")
        assert spec is not None and spec.kind == "crash"
        # The hit was consumed here; the next dispatch sees nothing.
        assert pending_fault("replica.dispatch") is None
        assert injector.hits("replica.dispatch") == 2
