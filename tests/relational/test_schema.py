"""Unit tests for Schema and Attribute."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import Attribute, CATEGORICAL, KEY, NUMERIC, Schema


def test_attribute_defaults_to_numeric():
    attribute = Attribute("price")
    assert attribute.is_numeric
    assert not attribute.is_categorical
    assert not attribute.is_key


def test_attribute_rejects_unknown_dtype():
    with pytest.raises(SchemaError):
        Attribute("price", "decimal")


def test_attribute_rejects_empty_name():
    with pytest.raises(SchemaError):
        Attribute("")


def test_key_attribute_is_categorical_and_key():
    attribute = Attribute("zipcode", KEY)
    assert attribute.is_categorical
    assert attribute.is_key


def test_schema_from_dict_spec():
    schema = Schema.from_spec({"zip": KEY, "price": NUMERIC, "desc": CATEGORICAL})
    assert schema.names == ["zip", "price", "desc"]
    assert schema.numeric_names == ["price"]
    assert schema.categorical_names == ["zip", "desc"]
    assert schema.key_names == ["zip"]


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError):
        Schema.from_spec([Attribute("a"), Attribute("a")])


def test_schema_getitem_and_contains():
    schema = Schema.from_spec({"a": NUMERIC, "b": CATEGORICAL})
    assert "a" in schema
    assert "z" not in schema
    assert schema["b"].dtype == CATEGORICAL
    with pytest.raises(SchemaError):
        schema["z"]


def test_schema_project_preserves_requested_order():
    schema = Schema.from_spec({"a": NUMERIC, "b": NUMERIC, "c": CATEGORICAL})
    projected = schema.project(["c", "a"])
    assert projected.names == ["c", "a"]


def test_schema_rename():
    schema = Schema.from_spec({"a": NUMERIC, "b": CATEGORICAL})
    renamed = schema.rename({"a": "x"})
    assert renamed.names == ["x", "b"]
    assert renamed["x"].dtype == NUMERIC


def test_schema_drop():
    schema = Schema.from_spec({"a": NUMERIC, "b": CATEGORICAL, "c": NUMERIC})
    assert schema.drop(["b"]).names == ["a", "c"]


def test_union_compatible_ignores_order():
    left = Schema.from_spec({"a": NUMERIC, "b": CATEGORICAL})
    right = Schema.from_spec({"b": CATEGORICAL, "a": NUMERIC})
    assert left.union_compatible(right)


def test_union_incompatible_on_dtype_mismatch():
    left = Schema.from_spec({"a": NUMERIC})
    right = Schema.from_spec({"a": CATEGORICAL})
    assert not left.union_compatible(right)


def test_merge_suffixes_colliding_columns():
    left = Schema.from_spec({"k": KEY, "x": NUMERIC})
    right = Schema.from_spec({"k": KEY, "x": NUMERIC, "y": NUMERIC})
    merged = left.merge(right, on=["k"])
    assert merged.names == ["k", "x", "x_r", "y"]
