"""Unit tests for join, union, group-by, and helpers."""

import numpy as np
import pytest

from repro.exceptions import RelationError, SchemaError
from repro.relational import (
    KEY,
    NUMERIC,
    Relation,
    Schema,
    distinct_values,
    groupby,
    join,
    project,
    select,
    semi_join_keys,
    union,
)


@pytest.fixture
def orders():
    return Relation(
        "orders",
        {
            "zip": ["10001", "10002", "10001"],
            "amount": [10.0, 20.0, 30.0],
        },
        Schema.from_spec({"zip": KEY, "amount": NUMERIC}),
    )


@pytest.fixture
def demographics():
    return Relation(
        "demographics",
        {
            "zip": ["10001", "10002", "10003"],
            "income": [55.0, 70.0, 40.0],
        },
        Schema.from_spec({"zip": KEY, "income": NUMERIC}),
    )


def test_join_matches_expected_rows(orders, demographics):
    joined = join(orders, demographics, on="zip")
    assert len(joined) == 3
    rows = {(row["zip"], row["amount"], row["income"]) for row in joined.to_rows()}
    assert ("10001", 10.0, 55.0) in rows
    assert ("10002", 20.0, 70.0) in rows


def test_join_one_to_many_duplicates_left_rows(orders, demographics):
    joined = join(demographics, orders, on="zip")
    # 10001 matches two orders, 10002 one, 10003 zero.
    assert len(joined) == 3


def test_join_missing_key_raises(orders):
    other = Relation("o2", {"city": ["nyc"], "x": [1.0]})
    with pytest.raises(SchemaError):
        join(orders, other, on="zip")


def test_join_suffixes_colliding_columns(orders):
    other = Relation(
        "dupe",
        {"zip": ["10001"], "amount": [99.0]},
        Schema.from_spec({"zip": KEY, "amount": NUMERIC}),
    )
    joined = join(orders, other, on="zip")
    assert "amount_r" in joined.columns


def test_union_is_bag_semantics(orders):
    doubled = union(orders, orders)
    assert len(doubled) == 6


def test_union_aligns_column_order(orders):
    reordered = orders.project(["amount", "zip"])
    combined = union(orders, reordered)
    assert combined.columns == orders.columns
    assert len(combined) == 6


def test_union_incompatible_raises(orders, demographics):
    with pytest.raises(SchemaError):
        union(orders, demographics)


def test_groupby_sum_mean_count(orders):
    grouped = groupby(
        orders,
        ["zip"],
        {"total": ("amount", "sum"), "avg": ("amount", "mean"), "n": ("amount", "count")},
    )
    by_zip = {row["zip"]: row for row in grouped.to_rows()}
    assert by_zip["10001"]["total"] == 40.0
    assert by_zip["10001"]["avg"] == 20.0
    assert by_zip["10002"]["n"] == 1.0


def test_groupby_min_max(orders):
    grouped = groupby(orders, ["zip"], {"lo": ("amount", "min"), "hi": ("amount", "max")})
    by_zip = {row["zip"]: row for row in grouped.to_rows()}
    assert by_zip["10001"]["lo"] == 10.0
    assert by_zip["10001"]["hi"] == 30.0


def test_groupby_rejects_unknown_aggregate(orders):
    with pytest.raises(RelationError):
        groupby(orders, ["zip"], {"x": ("amount", "median")})


def test_groupby_rejects_unknown_columns(orders):
    with pytest.raises(SchemaError):
        groupby(orders, ["missing"], {"x": ("amount", "sum")})
    with pytest.raises(SchemaError):
        groupby(orders, ["zip"], {"x": ("missing", "sum")})


def test_project_and_select_helpers(orders):
    projected = project(orders, ["amount"], name="amounts")
    assert projected.columns == ["amount"]
    assert projected.name == "amounts"
    filtered = select(orders, lambda row: row["amount"] >= 20, name="big")
    assert len(filtered) == 2
    assert filtered.name == "big"


def test_distinct_values_numeric_and_categorical(orders):
    assert distinct_values(orders, "zip") == ["10001", "10002"]
    assert distinct_values(orders, "amount") == [10.0, 20.0, 30.0]


def test_semi_join_keys(orders, demographics):
    assert semi_join_keys(orders, demographics, "zip") == {"10001", "10002"}


def test_join_then_union_consistency(orders, demographics):
    """Join after union equals union of joins (distributivity sanity check)."""
    combined = union(orders, orders)
    joined_once = join(combined, demographics, on="zip")
    joined_twice = union(
        join(orders, demographics, on="zip"), join(orders, demographics, on="zip")
    )
    assert sorted(r["amount"] for r in joined_once.to_rows()) == sorted(
        r["amount"] for r in joined_twice.to_rows()
    )
    np.testing.assert_allclose(
        sorted(joined_once["income"]), sorted(joined_twice["income"])
    )
