"""Unit tests for CSV io."""

import math

import pytest

from repro.exceptions import RelationError
from repro.relational import CATEGORICAL, NUMERIC, Relation, read_csv, write_csv


def test_csv_round_trip(tmp_path):
    relation = Relation(
        "r", {"zip": ["10001", "10002"], "price": [10.5, 20.0], "city": ["a", "b"]}
    )
    path = write_csv(relation, tmp_path / "r.csv")
    loaded = read_csv(path)
    assert loaded.columns == ["zip", "price", "city"]
    assert loaded.schema["price"].dtype == NUMERIC
    assert loaded.schema["city"].dtype == CATEGORICAL
    assert loaded["price"][1] == 20.0


def test_read_csv_handles_missing_numeric_values(tmp_path):
    path = tmp_path / "m.csv"
    path.write_text("a,b\n1.5,x\n,y\n")
    relation = read_csv(path)
    assert relation.schema["a"].dtype == NUMERIC
    assert math.isnan(relation["a"][1])


def test_read_csv_empty_file_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(RelationError):
        read_csv(path)


def test_read_csv_malformed_row_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n3\n")
    with pytest.raises(RelationError):
        read_csv(path)


def test_read_csv_uses_stem_as_name(tmp_path):
    path = tmp_path / "taxi_trips.csv"
    path.write_text("a\n1\n")
    assert read_csv(path).name == "taxi_trips"
