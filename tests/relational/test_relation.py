"""Unit tests for the columnar Relation."""

import numpy as np
import pytest

from repro.exceptions import RelationError, SchemaError
from repro.relational import Attribute, CATEGORICAL, KEY, NUMERIC, Relation, Schema


@pytest.fixture
def listings():
    return Relation(
        "listings",
        {
            "zip": ["10001", "10002", "10001", "10003"],
            "price": [100.0, 250.0, 175.0, 90.0],
            "beds": [1, 2, 2, 1],
        },
        Schema.from_spec({"zip": KEY, "price": NUMERIC, "beds": NUMERIC}),
    )


def test_relation_infers_schema_types():
    relation = Relation("r", {"a": [1, 2, 3], "b": ["x", "y", "z"]})
    assert relation.schema["a"].dtype == NUMERIC
    assert relation.schema["b"].dtype == CATEGORICAL


def test_relation_requires_name():
    with pytest.raises(RelationError):
        Relation("", {"a": [1]})


def test_relation_rejects_mismatched_lengths():
    with pytest.raises(RelationError):
        Relation("r", {"a": [1, 2], "b": [1]})


def test_relation_rejects_schema_column_mismatch():
    with pytest.raises(SchemaError):
        Relation("r", {"a": [1]}, Schema.from_spec({"a": NUMERIC, "b": NUMERIC}))


def test_len_and_shape(listings):
    assert len(listings) == 4
    assert listings.num_rows == 4
    assert listings.num_columns == 3
    assert listings.columns == ["zip", "price", "beds"]


def test_column_access_and_missing(listings):
    np.testing.assert_allclose(listings["price"], [100.0, 250.0, 175.0, 90.0])
    with pytest.raises(RelationError):
        listings.column("missing")


def test_from_rows_round_trip(listings):
    rebuilt = Relation.from_rows("copy", listings.to_rows(), listings.schema)
    assert rebuilt == listings.renamed("copy")
    assert rebuilt.name == "copy"


def test_from_rows_requires_schema_when_empty():
    with pytest.raises(RelationError):
        Relation.from_rows("r", [])


def test_empty_like(listings):
    empty = Relation.empty_like(listings, "empty")
    assert len(empty) == 0
    assert empty.columns == listings.columns


def test_numeric_matrix_orders_columns(listings):
    matrix = listings.numeric_matrix(["beds", "price"])
    assert matrix.shape == (4, 2)
    np.testing.assert_allclose(matrix[:, 0], [1, 2, 2, 1])


def test_numeric_matrix_rejects_categorical(listings):
    with pytest.raises(RelationError):
        listings.numeric_matrix(["zip"])


def test_with_column_replaces_and_appends(listings):
    with_log = listings.with_column("log_price", np.log(listings["price"]))
    assert "log_price" in with_log
    replaced = with_log.with_column("beds", [9, 9, 9, 9])
    np.testing.assert_allclose(replaced["beds"], [9, 9, 9, 9])


def test_without_columns(listings):
    trimmed = listings.without_columns(["beds"])
    assert trimmed.columns == ["zip", "price"]


def test_rename_columns(listings):
    renamed = listings.rename({"price": "nightly_price"})
    assert "nightly_price" in renamed
    assert "price" not in renamed


def test_take_and_head(listings):
    head = listings.head(2)
    assert len(head) == 2
    taken = listings.take([3, 0])
    assert taken["zip"][0] == "10003"


def test_select_and_filter_mask(listings):
    expensive = listings.select(lambda row: row["price"] > 150)
    assert len(expensive) == 2
    mask = listings["beds"] == 2
    assert len(listings.filter_mask(mask)) == 2
    with pytest.raises(RelationError):
        listings.filter_mask(np.array([True]))


def test_sample_and_split(listings):
    rng = np.random.default_rng(0)
    sample = listings.sample(2, rng)
    assert len(sample) == 2
    first, second = listings.split(0.5, rng)
    assert len(first) + len(second) == len(listings)
    with pytest.raises(RelationError):
        listings.split(1.5)


def test_concat_rows_requires_compatibility(listings):
    other = Relation("r", {"a": [1.0]})
    with pytest.raises(SchemaError):
        listings.concat_rows(other)


def test_equality_detects_value_changes(listings):
    other = listings.with_column("price", [100.0, 250.0, 175.0, 91.0])
    assert listings != other
