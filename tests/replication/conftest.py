"""Shared fixtures for the WAL-shipping replication suite."""

import pytest

from repro.core import SearchRequest
from repro.datasets import CorpusSpec, generate_corpus

_SPEC = CorpusSpec(num_datasets=14, requester_rows=100, provider_rows=100, seed=13)


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(_SPEC)


@pytest.fixture(scope="session")
def request_for(corpus):
    return SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=2,
    )
