"""FollowerReplica: chain warm-start, epoch-exact catch-up, self-healing.

Runs the follower *in process* against a primary journaling into the same
directory — the protocol is all files, so process isolation adds nothing
but runtime here (the cross-process path is covered by
``tests/serving/test_replicated_backend.py``).
"""

import pytest
from replication_helpers import forge_record, fresh_primary, result_identity

from repro.exceptions import ReplicationError
from repro.persist import SnapshotManager, WalRecord
from repro.replication import FollowerReplica, FollowerSpec, ReadEnvelope

_FAST = dict(poll_seconds=0.005, catchup_timeout_seconds=5.0)


def make_follower(directory, **overrides):
    return FollowerReplica(FollowerSpec(directory=str(directory), **{**_FAST, **overrides}))


def test_bootstrap_is_bit_identical_to_primary(tmp_path, corpus, request_for):
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=3)
    follower = make_follower(tmp_path)
    assert follower.epoch == primary.corpus.epoch
    assert follower.platform.corpus.names() == primary.corpus.names()
    assert result_identity(follower.platform.search(request_for)) == result_identity(
        primary.search(request_for)
    )


def test_catch_up_across_a_seal(tmp_path, corpus):
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=3)
    follower = make_follower(tmp_path)
    # 6 more mutations at cadence 3: two seals (rotations) land mid-tail.
    for relation in corpus.providers[8:14]:
        primary.register_dataset(relation)
    lag = follower.catch_up(primary.corpus.epoch, timeout_seconds=5.0)
    assert lag == 6
    assert follower.epoch == primary.corpus.epoch
    assert follower.platform.corpus.names() == primary.corpus.names()
    assert follower.reloads == 0  # tailing + segments healed it, no re-bootstrap


def test_catch_up_stops_exactly_at_the_target_epoch(tmp_path, corpus):
    """Records beyond the request's epoch stay buffered: a racing primary
    mutation must never push the follower past the epoch it was asked for."""
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=50)
    follower = make_follower(tmp_path)
    target = primary.corpus.epoch + 2
    for relation in corpus.providers[8:12]:  # 4 mutations, target is 2 in
        primary.register_dataset(relation)
    follower.catch_up(target, timeout_seconds=5.0)
    assert follower.epoch == target
    assert [record.epoch for record in follower._pending] == [target + 1, target + 2]
    # The rest applies on the next request's catch-up.
    follower.catch_up(primary.corpus.epoch, timeout_seconds=5.0)
    assert follower.epoch == primary.corpus.epoch


def test_pruned_history_heals_by_chain_rebootstrap(tmp_path, corpus):
    """A follower behind by more than the retained chain: the segments it
    needs are gone, so it re-bootstraps from the newest snapshot."""
    primary = fresh_primary(corpus, upto=4)
    SnapshotManager(primary, tmp_path, every_mutations=2, keep_snapshots=1).attach()
    follower = make_follower(tmp_path)
    stranded = follower.epoch
    # 10 mutations at cadence 2 prune every segment the follower is owed.
    for relation in corpus.providers[4:14]:
        primary.register_dataset(relation)
    lag = follower.catch_up(primary.corpus.epoch, timeout_seconds=5.0)
    assert lag == primary.corpus.epoch - stranded
    assert follower.epoch == primary.corpus.epoch
    assert follower.reloads >= 1
    assert follower.platform.corpus.names() == primary.corpus.names()


def test_bootstrap_skips_corrupt_snapshot_without_quarantining(tmp_path, corpus):
    """The newest snapshot is garbage: the follower falls back to the
    retained version + sealed segments — and, being a reader, leaves the
    corrupt file in place for the primary to quarantine."""
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=3)
    snapshot = tmp_path / "snapshot.bin"
    raw = bytearray(snapshot.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    snapshot.write_bytes(bytes(raw))

    follower = make_follower(tmp_path)
    assert follower.epoch == primary.corpus.epoch
    assert follower.platform.corpus.names() == primary.corpus.names()
    assert snapshot.exists()  # not renamed to .corrupt — read-only discipline
    assert not (tmp_path / "snapshot.bin.corrupt").exists()


def test_restart_from_quarantined_directory(tmp_path, corpus):
    """After the primary quarantined a corrupt snapshot (``.corrupt`` file
    beside the chain), a restarting follower still catches up from the
    retained versions."""
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=3)
    snapshot = tmp_path / "snapshot.bin"
    snapshot.rename(tmp_path / "snapshot.bin.corrupt")  # what quarantine leaves

    follower = make_follower(tmp_path)
    for relation in corpus.providers[8:11]:
        primary.register_dataset(relation)
    follower.catch_up(primary.corpus.epoch, timeout_seconds=5.0)
    assert follower.epoch == primary.corpus.epoch
    assert follower.platform.corpus.names() == primary.corpus.names()


def test_epoch_regression_is_rejected(tmp_path, corpus):
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=50)
    follower = make_follower(tmp_path)
    with pytest.raises(ReplicationError, match="regression"):
        follower._extend_pending([WalRecord(follower.epoch - 1, "add", None)])


def test_forged_regression_in_the_live_wal_heals_by_rebootstrap(tmp_path, corpus):
    """A regressing record framed into the shipped stream: the tailer path
    refuses it (never replays a rewound history), and the follower comes
    back via the chain — where the epoch guard skips the forgery."""
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=50)
    follower = make_follower(tmp_path)
    forge_record(tmp_path / "wal.bin", epoch=2)
    primary.register_dataset(corpus.providers[8])  # a legit record lands after it
    follower.catch_up(primary.corpus.epoch, timeout_seconds=5.0)
    assert follower.reloads >= 1
    assert follower.epoch == primary.corpus.epoch
    assert follower.platform.corpus.names() == primary.corpus.names()


def test_stale_outcome_on_unreachable_epoch(tmp_path, corpus, request_for):
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=50)
    follower = make_follower(tmp_path, catchup_timeout_seconds=0.05)
    envelope = ReadEnvelope(
        mode="search",
        request=request_for,
        budget_seconds=None,
        expected_epoch=primary.corpus.epoch + 3,  # never journaled
    )
    outcome = follower.execute(envelope)
    assert outcome.stale
    assert outcome.result is None
    assert outcome.epoch == primary.corpus.epoch
    assert outcome.lag == 3


def test_execute_serves_at_the_expected_epoch(tmp_path, corpus, request_for):
    primary = fresh_primary(corpus, snapshot_dir=tmp_path, snapshot_every_mutations=3)
    follower = make_follower(tmp_path)
    primary.register_dataset(corpus.providers[8])
    envelope = ReadEnvelope(
        mode="search",
        request=request_for,
        budget_seconds=None,
        expected_epoch=primary.corpus.epoch,
    )
    outcome = follower.execute(envelope)
    assert not outcome.stale
    assert outcome.epoch == primary.corpus.epoch
    assert outcome.lag == 1
    assert result_identity(outcome.result) == result_identity(
        primary.search(request_for)
    )
