"""Workload helpers shared by the replication suites (importable by name)."""

import pickle
import struct
import zlib

from repro.core import Mileena

INITIAL = 8

_FRAME = struct.Struct("<II")


def fresh_primary(corpus, upto=INITIAL, **kwargs):
    """A sharded platform with ``upto`` providers registered."""
    platform = Mileena.sharded(num_shards=2, **kwargs)
    for relation in corpus.providers[:upto]:
        platform.register_dataset(relation)
    return platform


def result_identity(result):
    """A bit-exact fingerprint of a search result (plan + trained model)."""
    report = result.final_report
    return (
        tuple((c.kind, c.dataset, c.join_key) for c in result.plan.candidates),
        result.proxy_test_r2,
        report.model.model_.intercept,
        report.model.model_.coefficients.tobytes(),
    )


def forge_record(path, epoch, op="add", payload=None):
    """Append a validly framed record behind the manager's back.

    What a misdirected writer (or a rewound filesystem) would leave in
    the shipped stream: the framing checks out, the epoch does not.
    """
    encoded = pickle.dumps((epoch, op, payload), protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "ab") as handle:
        handle.write(_FRAME.pack(len(encoded), zlib.crc32(encoded)) + encoded)
        handle.flush()
