"""WAL segment tailing edge cases: the follower's cursor vs a live primary.

Each scenario recreates one of the file states a follower can observe
while the primary keeps appending: a mid-append torn tail, a rotation
(seal) racing the tail, an in-place shrink, and a log that vanishes and
reappears.  The :class:`~repro.persist.wal.WalTailer` contract is that
every record is eventually surfaced exactly once per cursor position and
the cursor never touches the file (read-only, no truncation).
"""

from repro.persist import MutationWAL, WalTailer, read_wal_records


def test_poll_is_incremental(tmp_path):
    path = tmp_path / "wal.bin"
    wal = MutationWAL(path)
    tailer = WalTailer(path)
    wal.append(1, "add", "a")
    wal.append(2, "add", "b")
    assert [r.epoch for r in tailer.poll()] == [1, 2]
    assert tailer.poll() == []  # nothing new
    wal.append(3, "remove", "a")
    assert [(r.epoch, r.op) for r in tailer.poll()] == [(3, "remove")]
    wal.close()


def test_missing_file_is_an_empty_poll(tmp_path):
    tailer = WalTailer(tmp_path / "wal.bin")
    assert tailer.poll() == []
    wal = MutationWAL(tmp_path / "wal.bin")
    wal.append(1, "add", "a")
    wal.close()
    assert [r.epoch for r in tailer.poll()] == [1]


def test_torn_tail_stops_then_resumes(tmp_path):
    """A tear (primary mid-append) parks the cursor; a later poll resumes
    once the frame is complete — and the tailer never truncates the file."""
    path = tmp_path / "wal.bin"
    wal = MutationWAL(path)
    for epoch in (1, 2, 3):
        wal.append(epoch, "add", f"payload-{epoch}" * 10)
    wal.close()
    complete = path.read_bytes()

    path.write_bytes(complete[:-7])  # primary mid-write of record 3
    tailer = WalTailer(path)
    assert [r.epoch for r in tailer.poll()] == [1, 2]
    parked = tailer.offset
    assert tailer.poll() == []  # still torn: cursor stays parked
    assert tailer.offset == parked
    assert path.stat().st_size == len(complete) - 7  # read-only: no truncation

    path.write_bytes(complete)  # the append completes
    assert [r.epoch for r in tailer.poll()] == [3]


def test_rotation_resets_cursor_and_segment_heals_the_overlap(tmp_path):
    """A seal racing the tail: records not yet polled from the old live file
    are found in the sealed segment; the new live file is read from its head."""
    path = tmp_path / "wal.bin"
    sealed = tmp_path / "wal-000000000002.bin"
    wal = MutationWAL(path)
    wal.append(1, "add", "a")
    wal.append(2, "add", "b")
    tailer = WalTailer(path)
    assert [r.epoch for r in tailer.poll()] == [1, 2]

    wal.append(3, "add", "c")  # never polled before the seal
    assert wal.rotate(sealed)
    wal.append(4, "add", "d")  # lands in the fresh live file

    assert [r.epoch for r in tailer.poll()] == [4]
    assert tailer.rotations == 1
    # The missed record is exactly where the follower's chain walk looks.
    assert [r.epoch for r in read_wal_records(sealed)] == [1, 2, 3]
    wal.close()


def test_inplace_shrink_resets_to_head(tmp_path):
    """A same-inode shrink (outside interference — never produced by the
    manager) resets the cursor to the head instead of reading past EOF."""
    path = tmp_path / "wal.bin"
    wal = MutationWAL(path)
    wal.append(1, "add", "a")
    wal.append(2, "add", "b")
    wal.close()
    tailer = WalTailer(path)
    assert [r.epoch for r in tailer.poll()] == [1, 2]

    fresh = MutationWAL(tmp_path / "other.bin")
    fresh.append(1, "add", "z")
    fresh.close()
    shrunk = (tmp_path / "other.bin").read_bytes()
    with open(path, "r+b") as handle:  # rewrite in place: same inode, smaller
        handle.truncate(0)
        handle.write(shrunk)
    assert [(r.epoch, r.payload) for r in tailer.poll()] == [(1, "z")]
