"""Tests for the Figure 4 baseline systems."""

import pytest

from repro.baselines import (
    ArdaSearch,
    AutoSklearnBaseline,
    KeywordSearch,
    MileenaSearchAdapter,
    NoveltySearch,
    VertexAIBaseline,
    evaluate_linear_model,
)
from repro.core import SearchRequest, SimulatedClock
from repro.datasets import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(num_datasets=16, requester_rows=250, seed=1))


@pytest.fixture
def request_obj(corpus):
    return SearchRequest(
        train=corpus.train, test=corpus.test, target=corpus.target, max_augmentations=4
    )


@pytest.fixture(scope="module")
def corpus_relations(corpus):
    return {relation.name: relation for relation in corpus.providers}


def test_evaluate_linear_model_baseline(corpus):
    r2 = evaluate_linear_model(corpus.train, corpus.test, corpus.target)
    assert -0.5 < r2 < 0.6  # local features alone explain little


def test_arda_finds_signal_but_is_slow(request_obj, corpus_relations, corpus):
    clock = SimulatedClock()
    arda = ArdaSearch(clock=clock, seconds_per_candidate=180.0, seed=0)
    result = arda.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    baseline = evaluate_linear_model(corpus.train, corpus.test, corpus.target)
    assert result.test_r2 > baseline
    # ARDA materialises and retrains per candidate: far beyond the 10 min budget.
    assert result.elapsed_seconds > 600.0
    assert not result.finished_within_budget
    assert result.timeline[0].seconds <= result.timeline[-1].seconds


def test_novelty_is_not_utility_driven(request_obj, corpus_relations, corpus):
    clock = SimulatedClock()
    novelty = NoveltySearch(clock=clock, acquisitions=3)
    result = novelty.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    # Novelty picks by distributional distance; it must not beat a
    # utility-driven search by construction, and often hurts.
    mileena = MileenaSearchAdapter(clock=SimulatedClock(), automl_handoff=False)
    mileena_result = mileena.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert mileena_result.test_r2 >= result.test_r2 - 0.05
    assert result.selected  # it did acquire something


def test_autosklearn_limited_by_local_features(request_obj, corpus_relations, corpus):
    clock = SimulatedClock()
    automl = AutoSklearnBaseline(clock=clock, seconds_per_configuration=60.0)
    result = automl.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert result.test_r2 < 0.6  # missing features cap the achievable utility
    assert result.selected == []


def test_vertex_ai_ignores_budget_and_has_high_latency(request_obj, corpus_relations):
    clock = SimulatedClock()
    vertex = VertexAIBaseline(clock=clock)
    result = vertex.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert result.elapsed_seconds > 600.0
    assert not result.finished_within_budget


def test_keyword_search_is_fast_but_blind(request_obj, corpus_relations):
    clock = SimulatedClock()
    keyword = KeywordSearch(clock=clock, hits=3)
    result = keyword.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert result.elapsed_seconds < 60.0
    assert result.finished_within_budget


def test_mileena_adapter_beats_baselines_within_budget(request_obj, corpus_relations, corpus):
    clock = SimulatedClock()
    mileena = MileenaSearchAdapter(clock=clock, automl_handoff=False)
    result = mileena.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert result.finished_within_budget
    assert result.elapsed_seconds < 600.0
    automl = AutoSklearnBaseline(clock=SimulatedClock()).run(
        request_obj, corpus_relations, time_budget_seconds=600.0
    )
    assert result.test_r2 > automl.test_r2 + 0.1
    assert result.selected


def test_mileena_adapter_with_automl_handoff(request_obj, corpus_relations):
    clock = SimulatedClock()
    mileena = MileenaSearchAdapter(clock=clock, automl_handoff=True)
    result = mileena.run(request_obj, corpus_relations, time_budget_seconds=600.0)
    assert len(result.timeline) == 2
    assert result.timeline[1].test_r2 >= result.timeline[0].test_r2 - 0.05
