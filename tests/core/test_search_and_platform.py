"""End-to-end tests for the greedy search, platform facade, and AutoML service."""

import numpy as np
import pytest

from repro.core import (
    AugmentationCandidate,
    AugmentationState,
    GreedySketchSearch,
    JOIN,
    Mileena,
    MileenaAutoMLService,
    SearchRequest,
    SimulatedClock,
    UNION,
    materialize_plan,
    reduce_to_key,
)
from repro.datasets import CorpusSpec, generate_corpus
from repro.exceptions import SearchError
from repro.relational import KEY, NUMERIC, Relation, Schema
from repro.sketches import SketchBuilder, SketchStore


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusSpec(num_datasets=18, requester_rows=300, seed=0))


@pytest.fixture(scope="module")
def platform(small_corpus):
    platform = Mileena()
    for relation in small_corpus.providers:
        platform.register_dataset(relation)
    return platform


def make_request(corpus, **overrides):
    defaults = dict(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=4,
    )
    defaults.update(overrides)
    return SearchRequest(**defaults)


def test_candidate_validation():
    with pytest.raises(SearchError):
        AugmentationCandidate(kind="cross", dataset="x")
    with pytest.raises(SearchError):
        AugmentationCandidate(kind=JOIN, dataset="x")
    join_candidate = AugmentationCandidate(kind=JOIN, dataset="x", join_key="zone")
    assert "⋈" in join_candidate.describe()
    union_candidate = AugmentationCandidate(kind=UNION, dataset="x")
    assert "∪" in union_candidate.describe()


def test_reduce_to_key_averages_features():
    relation = Relation(
        "p",
        {"zone": ["a", "a", "b"], "x": [1.0, 3.0, 10.0]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC}),
    )
    reduced = reduce_to_key(relation, "zone", ["x"])
    by_zone = {row["zone"]: row["x"] for row in reduced.to_rows()}
    assert by_zone["a"] == 2.0
    assert by_zone["b"] == 10.0


def test_platform_registration(platform, small_corpus):
    assert platform.corpus_size() == len(small_corpus.providers)
    assert set(platform.dataset_names()) == set(small_corpus.provider_names)
    assert len(platform.candidate_pairs()) > 0
    with pytest.raises(SearchError):
        platform.register_dataset(small_corpus.providers[0])


def test_discovery_produces_signal_candidates(platform, small_corpus):
    request = make_request(small_corpus)
    candidates = platform.discover_candidates(request)
    datasets = {candidate.dataset for candidate in candidates}
    assert any(name in datasets for name in small_corpus.signal_join_names)
    assert any(name in datasets for name in small_corpus.signal_union_names)


def test_search_improves_over_local_features(platform, small_corpus):
    request = make_request(small_corpus)
    result = platform.search(request)
    assert len(result.plan) >= 1
    assert result.plan.final_utility > result.plan.base_utility + 0.15
    assert result.final_report is not None
    assert result.final_report.test_r2 > 0.6
    # Search selected at least one genuine signal dataset.
    chosen = {candidate.dataset for candidate in result.plan.candidates}
    signal = set(small_corpus.signal_join_names) | set(small_corpus.signal_union_names)
    assert chosen & signal


def test_search_mostly_ignores_distractors(platform, small_corpus):
    request = make_request(small_corpus)
    result = platform.search(request)
    chosen = {candidate.dataset for candidate in result.plan.candidates}
    distractors = set(small_corpus.distractor_names)
    signal = chosen - distractors
    assert len(signal) >= len(chosen & distractors)


def test_private_search_still_finds_signal(small_corpus):
    from repro.privacy import FactorizedPrivacyMechanism

    builder = SketchBuilder(
        mechanism=FactorizedPrivacyMechanism(rng=np.random.default_rng(7))
    )
    platform = Mileena(builder=builder)
    for relation in small_corpus.providers:
        platform.register_dataset(relation, epsilon=4.0)
    request = make_request(small_corpus, epsilon=4.0)
    result = platform.search(request)
    # The paper reports FPM reaching ~40-90% of non-private utility; the
    # non-private search on this corpus lands around 0.7, so 0.3 is the
    # lower end of that band.
    assert result.final_report.test_r2 > 0.3


def test_search_with_zero_augmentations(platform, small_corpus):
    request = make_request(small_corpus, max_augmentations=0)
    result = platform.search(request)
    assert len(result.plan) == 0
    assert result.final_report is not None


def test_search_respects_time_budget(small_corpus):
    clock = SimulatedClock()

    class SlowProxy:
        """A proxy whose every evaluation consumes simulated time."""

        def __init__(self, inner, clock, cost):
            self.inner = inner
            self.clock = clock
            self.cost = cost

        def evaluate(self, train_element, test_element, target):
            self.clock.advance(self.cost)
            return self.inner.evaluate(train_element, test_element, target)

    platform = Mileena(clock=clock)
    for relation in small_corpus.providers:
        platform.register_dataset(relation)
    from repro.core import SketchProxyModel

    platform.proxy = SlowProxy(SketchProxyModel(), clock, cost=30.0)
    request = make_request(small_corpus, time_budget_seconds=120.0)
    result = platform.search(request, train_final_model=False)
    # With 30 s per evaluation and a 120 s budget only a few evaluations fit.
    assert result.elapsed_seconds >= 120.0
    assert len(result.plan) <= 4


def test_greedy_search_skips_unknown_datasets(small_corpus):
    builder = SketchBuilder()
    train_sketch = builder.build(
        small_corpus.train, features=["local_a", "local_b", "demand"], key_columns=["zone"]
    )
    test_sketch = builder.build(
        small_corpus.test,
        features=["local_a", "local_b", "demand"],
        key_columns=["zone"],
        scaling=train_sketch.scaling,
    )
    state = AugmentationState.from_sketches("demand", train_sketch, test_sketch)
    search = GreedySketchSearch(store=SketchStore(), clock=SimulatedClock())
    plan, _ = search.run(
        state,
        [AugmentationCandidate(kind=JOIN, dataset="ghost", join_key="zone")],
    )
    assert len(plan) == 0


def test_materialize_plan_unknown_dataset_raises(small_corpus):
    from repro.core import AugmentationPlan, AugmentationStep

    plan = AugmentationPlan(base_utility=0.0)
    plan.steps.append(
        AugmentationStep(AugmentationCandidate(kind=UNION, dataset="ghost"), 0.5)
    )
    with pytest.raises(SearchError):
        materialize_plan(small_corpus.train, small_corpus.test, plan, {})


def test_automl_service_improves_on_proxy(platform, small_corpus):
    service = MileenaAutoMLService(platform=platform, clock=SimulatedClock(), automl_splits=3)
    request = make_request(small_corpus)
    result = service.run(request)
    assert result.automl_test_r2 >= result.search_result.plan.base_utility
    assert result.automl_test_r2 > 0.5
    assert result.automl_best_model
    assert result.total_seconds >= 0.0


def test_automl_service_fraction_validation(platform, small_corpus):
    service = MileenaAutoMLService(platform=platform, search_fraction=1.5)
    with pytest.raises(SearchError):
        service.run(make_request(small_corpus))


def test_corpus_add_many_bulk_registration(small_corpus):
    from repro.core import Corpus, DatasetRegistration

    builder = SketchBuilder()
    registrations = [
        DatasetRegistration(
            relation=relation, budget=None, sketch=builder.build(relation)
        )
        for relation in small_corpus.providers[:5]
    ]
    one_by_one = Corpus()
    for registration in registrations:
        one_by_one.add(registration)
    bulk = Corpus()
    bulk.add_many(registrations)
    assert bulk.names() == one_by_one.names()
    assert len(bulk.discovery) == len(one_by_one.discovery)
    # A bulk load is one corpus transition: the epoch advances once, not N
    # times, so epoch-keyed caches churn once per backfill.
    assert one_by_one.epoch == 5
    assert bulk.epoch == 1
    bulk.add_many([])
    assert bulk.epoch == 1
    with pytest.raises(SearchError):
        bulk.add_many(registrations[:1])


def test_corpus_add_many_is_atomic_on_duplicates(small_corpus):
    from repro.core import Corpus, DatasetRegistration

    builder = SketchBuilder()
    registrations = [
        DatasetRegistration(
            relation=relation, budget=None, sketch=builder.build(relation)
        )
        for relation in small_corpus.providers[:3]
    ]
    corpus = Corpus()
    # Intra-batch duplicate: nothing may be applied, the epoch must not move.
    with pytest.raises(SearchError):
        corpus.add_many(registrations + [registrations[0]])
    assert len(corpus) == 0
    assert len(corpus.discovery) == 0
    assert corpus.epoch == 0
