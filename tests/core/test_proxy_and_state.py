"""Tests for the sketch proxy model and the augmentation state algebra."""

import numpy as np
import pytest

from repro.core import AugmentationState, SketchProxyModel
from repro.exceptions import SketchError
from repro.ml import LinearRegression, r2_score
from repro.relational import KEY, NUMERIC, Relation, Schema, join
from repro.sketches import SketchBuilder


def make_task(seed=0, n=300, zones=8):
    """A task whose target depends on a zone-level latent feature."""
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=zones)
    zone_index = rng.integers(0, zones, size=n)
    local = rng.normal(size=n)
    y = 0.3 * local + 1.5 * latent[zone_index] + rng.normal(scale=0.1, size=n)
    relation = Relation(
        "task",
        {
            "zone": [f"z{i}" for i in zone_index],
            "local": local,
            "y": y,
        },
        Schema.from_spec({"zone": KEY, "local": NUMERIC, "y": NUMERIC}),
    )
    provider = Relation(
        "zone_latent",
        {"zone": [f"z{i}" for i in range(zones)], "latent": latent},
        Schema.from_spec({"zone": KEY, "latent": NUMERIC}),
    )
    return relation, provider


@pytest.fixture
def task_fixture():
    relation, provider = make_task()
    rng = np.random.default_rng(1)
    test, train = relation.split(0.3, rng)
    train = train.renamed("train")
    test = test.renamed("test")
    builder = SketchBuilder()
    train_sketch = builder.build(train, features=["local", "y"], key_columns=["zone"])
    test_sketch = builder.build(
        test, features=["local", "y"], key_columns=["zone"], scaling=train_sketch.scaling
    )
    provider_sketch = builder.build(provider, features=["latent"], key_columns=["zone"])
    return train, test, provider, train_sketch, test_sketch, provider_sketch


def test_proxy_evaluation_matches_raw_training(task_fixture):
    train, test, provider, train_sketch, test_sketch, _ = task_fixture
    proxy = SketchProxyModel(ridge=1e-8)
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    score = proxy.evaluate(state.train_element(), state.test_element(), "y")

    # Raw-data reference: fit on scaled training data, score on scaled test data.
    scaling = train_sketch.scaling
    def scaled(relation):
        x = (relation.numeric_matrix(["local"]) - scaling["local"].minimum) / scaling["local"].span
        y = (np.asarray(relation.column("y")) - scaling["y"].minimum) / scaling["y"].span
        return np.clip(x, 0, 1), np.clip(y, 0, 1)

    x_train, y_train = scaled(train)
    x_test, y_test = scaled(test)
    model = LinearRegression(ridge=1e-8).fit(x_train, y_train)
    assert score.train_r2 == pytest.approx(model.score(x_train, y_train), abs=1e-6)
    assert score.test_r2 == pytest.approx(r2_score(y_test, model.predict(x_test)), abs=1e-6)


def test_join_augmentation_improves_proxy_utility(task_fixture):
    _, _, _, train_sketch, test_sketch, provider_sketch = task_fixture
    proxy = SketchProxyModel()
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    base = proxy.evaluate(state.train_element(), state.test_element(), "y")
    augmented = state.with_join("zone", provider_sketch)
    improved = proxy.evaluate(augmented.train_element(), augmented.test_element(), "y")
    assert improved.test_r2 > base.test_r2 + 0.2


def test_join_state_statistics_match_materialized_join(task_fixture):
    train, test, provider, train_sketch, test_sketch, provider_sketch = task_fixture
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    augmented = state.with_join("zone", provider_sketch)
    element = augmented.train_element()

    # Materialise the scaled join and compare the covariance statistics.
    builder = SketchBuilder()
    scaled_train, _ = builder._scale(train, ["local", "y"])
    scaled_provider, _ = builder._scale(provider, ["latent"])
    materialized = join(scaled_train, scaled_provider, on="zone")
    from repro.semiring import covariance_aggregate

    expected = covariance_aggregate(materialized, ["local", "y", "latent"])
    assert element.is_close(expected, tolerance=1e-6)


def test_union_augmentation_adds_rows(task_fixture):
    _, _, _, train_sketch, test_sketch, _ = task_fixture
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    unioned = state.with_union(train_sketch)
    assert unioned.train_element().count == pytest.approx(2 * train_sketch.row_count)
    # Test-side statistics are untouched by horizontal augmentation.
    assert unioned.test_element().is_close(state.test_element())
    assert unioned.accepted_unions == [train_sketch.dataset]


def test_with_join_requires_matching_keys(task_fixture):
    _, _, _, train_sketch, test_sketch, provider_sketch = task_fixture
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    with pytest.raises(SketchError):
        state.with_join("city", provider_sketch)


def test_proxy_requires_shared_features(task_fixture):
    _, _, _, train_sketch, test_sketch, _ = task_fixture
    proxy = SketchProxyModel()
    from repro.semiring import CovarianceElement

    bogus = CovarianceElement.from_matrix(("other", "y2"), np.random.default_rng(0).random((5, 2)))
    with pytest.raises(SketchError):
        proxy.evaluate(train_sketch.total, bogus, "y")


def test_multi_key_branches_combine():
    """Joins on two different keys produce a usable combined element."""
    rng = np.random.default_rng(0)
    n, zones, months = 400, 6, 5
    zone_latent = rng.normal(size=zones)
    month_latent = rng.normal(size=months)
    zone_index = rng.integers(0, zones, size=n)
    month_index = rng.integers(0, months, size=n)
    y = zone_latent[zone_index] + month_latent[month_index] + rng.normal(scale=0.05, size=n)
    task = Relation(
        "task",
        {
            "zone": [f"z{i}" for i in zone_index],
            "month": [f"m{i}" for i in month_index],
            "y": y,
        },
        Schema.from_spec({"zone": KEY, "month": KEY, "y": NUMERIC}),
    )
    zone_provider = Relation(
        "zone_p",
        {"zone": [f"z{i}" for i in range(zones)], "zlat": zone_latent},
        Schema.from_spec({"zone": KEY, "zlat": NUMERIC}),
    )
    month_provider = Relation(
        "month_p",
        {"month": [f"m{i}" for i in range(months)], "mlat": month_latent},
        Schema.from_spec({"month": KEY, "mlat": NUMERIC}),
    )
    builder = SketchBuilder()
    train_sketch = builder.build(task, features=["y"], key_columns=["zone", "month"])
    test_sketch = builder.build(task, features=["y"], key_columns=["zone", "month"],
                                scaling=train_sketch.scaling)
    state = AugmentationState.from_sketches("y", train_sketch, test_sketch)
    state = state.with_join("zone", builder.build(zone_provider))
    state = state.with_join("month", builder.build(month_provider))
    element = state.train_element()
    assert set(element.features) == {"y", "zlat", "mlat"}
    assert element.count == pytest.approx(n)
    proxy = SketchProxyModel()
    score = proxy.evaluate(element, state.test_element(), "y")
    assert score.test_r2 > 0.8
