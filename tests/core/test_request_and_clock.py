"""Tests for SearchRequest validation and the clock/budget abstractions."""

import pytest

from repro.core import BudgetTimer, SearchRequest, SimulatedClock, WallClock
from repro.datasets import make_regression_relation
from repro.exceptions import SearchError
from repro.relational import KEY, NUMERIC, Relation, Schema


def make_request(**overrides):
    train = Relation(
        "train",
        {"zone": ["a", "b"], "x": [1.0, 2.0], "y": [1.0, 2.0]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    test = Relation(
        "test",
        {"zone": ["a", "b"], "x": [1.5, 2.5], "y": [1.5, 2.5]},
        Schema.from_spec({"zone": KEY, "x": NUMERIC, "y": NUMERIC}),
    )
    defaults = dict(train=train, test=test, target="y")
    defaults.update(overrides)
    return SearchRequest(**defaults)


def test_request_defaults_infer_join_keys_and_features():
    request = make_request()
    assert request.join_keys == ["zone"]
    assert request.feature_columns == ["x"]
    assert not request.is_private


def test_request_private_flag():
    assert make_request(epsilon=1.0).is_private
    assert not make_request(epsilon=0.0).is_private


def test_request_validation_errors():
    with pytest.raises(SearchError):
        make_request(target="missing")
    with pytest.raises(SearchError):
        make_request(task="classification")
    with pytest.raises(SearchError):
        make_request(max_augmentations=-1)
    with pytest.raises(SearchError):
        make_request(join_keys=["not_a_column"])
    with pytest.raises(SearchError):
        make_request(target="zone")


def test_request_target_must_be_in_test():
    train = make_regression_relation("train", 10, 2, target="y")
    test = make_regression_relation("test", 10, 2, target="z")
    with pytest.raises(SearchError):
        SearchRequest(train=train, test=test, target="y")


def test_simulated_clock_advances():
    clock = SimulatedClock()
    assert clock.now() == 0.0
    clock.advance(5.0)
    clock.sleep(2.5)
    assert clock.now() == 7.5
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_wall_clock_monotonic():
    clock = WallClock()
    first = clock.now()
    second = clock.now()
    assert second >= first


def test_budget_timer_with_simulated_clock():
    clock = SimulatedClock()
    timer = BudgetTimer(clock, budget_seconds=10.0)
    assert not timer.expired()
    clock.advance(4.0)
    assert timer.elapsed() == 4.0
    assert timer.remaining() == 6.0
    clock.advance(7.0)
    assert timer.expired()
    assert timer.remaining() == 0.0


def test_budget_timer_without_budget_never_expires():
    timer = BudgetTimer(SimulatedClock(), budget_seconds=None)
    assert timer.remaining() == float("inf")
    assert not timer.expired()


def test_budget_timer_without_budget_still_tracks_elapsed():
    clock = SimulatedClock(start=100.0)
    timer = BudgetTimer(clock, budget_seconds=None)
    assert timer.elapsed() == 0.0
    clock.advance(12.5)
    assert timer.elapsed() == 12.5
    assert timer.remaining() == float("inf")


def test_budget_timer_zero_budget_expires_immediately():
    timer = BudgetTimer(SimulatedClock(), budget_seconds=0.0)
    assert timer.expired()
    assert timer.remaining() == 0.0


def test_budget_timer_expires_exactly_at_boundary():
    clock = SimulatedClock()
    timer = BudgetTimer(clock, budget_seconds=5.0)
    clock.advance(5.0)
    assert timer.remaining() == 0.0
    assert timer.expired()


def test_budget_timer_remaining_never_negative():
    clock = SimulatedClock()
    timer = BudgetTimer(clock, budget_seconds=1.0)
    clock.advance(50.0)
    assert timer.remaining() == 0.0
    assert timer.elapsed() == 50.0


def test_budget_timer_with_wall_clock():
    timer = BudgetTimer(WallClock(), budget_seconds=60.0)
    assert not timer.expired()
    assert 0.0 <= timer.elapsed() < 60.0
    assert 0.0 < timer.remaining() <= 60.0


def test_wall_clock_sleep_advances_time():
    clock = WallClock()
    before = clock.now()
    clock.sleep(0.01)
    assert clock.now() - before >= 0.009
