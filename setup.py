"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  Keeping a classic
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to ``setup.py develop``.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
