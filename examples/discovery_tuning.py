"""Discovery tuning walkthrough: exact vs LSH vs adaptive multi-probe LSH.

Builds a synthetic corpus whose join overlaps span the full similarity
range, then compares four engine configurations on the same queries:

* **exact** — the vectorized scan (bit-identical to the scalar oracle);
* **fixed LSH** — hand-picked ``lsh_bands=32``;
* **adaptive LSH** — band count derived from ``target_recall`` at the
  join threshold via the banding S-curve;
* **adaptive + multi-probe** — near-miss band buckets probed too, so
  the same target is met with fewer candidates lost at low similarity.

For each it reports median query latency, measured dataset-level recall
against the exact results, and the resolved band count — the same
trade-offs ``docs/TUNING.md`` describes and ``BENCH_discovery.json``
records for the committed corpus sizes.

Run with:  PYTHONPATH=src python examples/discovery_tuning.py
"""

import random
import statistics
import time

from repro.discovery import DiscoveryIndex, lsh_recall, profile_relation
from repro.relational import CATEGORICAL, KEY, NUMERIC, Relation, Schema

NUM_DATASETS = 400
NUM_QUERIES = 16
JOIN_THRESHOLD = 0.15
TARGET_RECALL = 0.9
SPEC = {"key": KEY, "tag": CATEGORICAL, "metric": NUMERIC}


def make_relation(name: str, rng: random.Random, domain: str, key_span: int) -> Relation:
    """Wider ``key_span`` → weaker overlaps → lower pair similarity.

    Tags are dataset-local on purpose: joinability is decided by the
    ``key`` column's overlap alone, so pair similarities land just above
    the join threshold — the regime where banding actually misses.
    """
    columns = {
        "key": [f"{domain}_{rng.randint(0, key_span)}" for _ in range(40)],
        "tag": [f"{name}tag{rng.randint(0, 8)}" for _ in range(40)],
        "metric": [float(i) for i in range(40)],
    }
    return Relation(name, columns, Schema.from_spec(SPEC))


def main() -> None:
    rng = random.Random(23)
    # Key spans of 120 over 40-row columns put same-domain pair
    # similarities around 0.15–0.3: close enough to the threshold that
    # the banding configurations measurably diverge.
    relations = [
        make_relation(f"ds{i}", rng, f"dom{rng.randint(0, 5)}", 120)
        for i in range(NUM_DATASETS)
    ]
    configs = {
        "exact": DiscoveryIndex(join_threshold=JOIN_THRESHOLD),
        "lsh[32 bands]": DiscoveryIndex(use_lsh=True, join_threshold=JOIN_THRESHOLD),
        "adaptive": DiscoveryIndex(
            use_lsh=True, target_recall=TARGET_RECALL, join_threshold=JOIN_THRESHOLD
        ),
        "adaptive+probe": DiscoveryIndex(
            use_lsh=True,
            target_recall=TARGET_RECALL,
            multi_probe=True,
            join_threshold=JOIN_THRESHOLD,
        ),
    }
    for index in configs.values():
        for relation in relations:
            index.register(relation)

    queries = [
        make_relation(f"q{i}", rng, f"dom{i % 6}", 120) for i in range(NUM_QUERIES)
    ]
    profiles = {
        name: [profile_relation(query, index.minhasher) for query in queries]
        for name, index in configs.items()
    }
    truth = [
        {c.dataset for c in configs["exact"].join_candidates_for_profile(profile)}
        for profile in profiles["exact"]
    ]
    total_truth = sum(len(t) for t in truth)

    print(
        f"{NUM_DATASETS} datasets, {NUM_QUERIES} queries, join threshold "
        f"{JOIN_THRESHOLD}, target recall {TARGET_RECALL} "
        f"({total_truth} true (query, dataset) join hits)\n"
    )
    print(f"{'config':<16} {'bands':>5} {'rows':>4} {'latency':>9} {'recall':>7}  S-curve@threshold")
    for name, index in configs.items():
        samples, found = [], 0
        for profile, expected in zip(profiles[name], truth):
            start = time.perf_counter()
            candidates = index.join_candidates_for_profile(profile)
            samples.append((time.perf_counter() - start) * 1000.0)
            found += len(expected & {c.dataset for c in candidates})
        recall = found / total_truth if total_truth else 1.0
        if index.use_lsh:
            bands = index.lsh_bands
            rows = index.minhasher.num_hashes // bands
            curve = lsh_recall(JOIN_THRESHOLD, bands, rows, index.multi_probe)
            shape = f"{bands:>5} {rows:>4}"
            promise = f"{curve:.3f}"
        else:
            shape, promise = f"{'-':>5} {'-':>4}", "exact"
        print(
            f"{name:<16} {shape} {statistics.median(samples):>7.3f}ms "
            f"{recall:>7.3f}  {promise}"
        )
    print(
        "\nexact mode is the parity oracle (recall 1 by construction); the\n"
        "S-curve column is the *per-pair* recall promise at the threshold —\n"
        "measured recall is higher because most true pairs sit above it."
    )


if __name__ == "__main__":
    main()
