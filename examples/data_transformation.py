"""Agent-based automatic data transformation (Figure 6).

Runs the EDA → Coder → Debugger → Reviewer pipeline on messy Airbnb-style
listings and shows how the derived features unlock a simple linear model,
then prints the full transformation × model grid.

Run with:  python examples/data_transformation.py
"""

from repro.agents import AgentTransformationPipeline, SimulatedLLM
from repro.datasets import AirbnbSpec, generate_airbnb
from repro.experiments import Figure6Config, run_figure6
from repro.ml import LinearRegression


def pipeline_walkthrough() -> None:
    listings = generate_airbnb(AirbnbSpec(num_listings=300, seed=0))
    print("raw columns:", listings.columns)

    # buggy_first_draft=True exercises the Debugger's fix-on-error loop.
    pipeline = AgentTransformationPipeline(llm=SimulatedLLM(buggy_first_draft=True))
    transformed = pipeline.transform(listings)
    report = pipeline.last_report
    print(f"suggested: {len(report.suggestions)}, accepted: {report.accepted}")
    print(f"rejected: {report.rejected}, failed: {report.failed}")

    raw_features = ["minimum_nights", "number_of_reviews"]
    raw_r2 = (
        LinearRegression()
        .fit(listings.numeric_matrix(raw_features), listings["price"])
        .score(listings.numeric_matrix(raw_features), listings["price"])
    )
    agent_features = [c for c in transformed.schema.numeric_names if c != "price"]
    agent_r2 = (
        LinearRegression()
        .fit(transformed.numeric_matrix(agent_features), transformed["price"])
        .score(transformed.numeric_matrix(agent_features), transformed["price"])
    )
    print(f"linear regression R2 — raw features: {raw_r2:.3f}, agent features: {agent_r2:.3f}\n")


def figure6_grid() -> None:
    result = run_figure6(Figure6Config(airbnb_spec=AirbnbSpec(num_listings=300, seed=0)))
    print("Figure 6(b) — R2 by transformation and model family")
    print(result.format())


if __name__ == "__main__":
    pipeline_walkthrough()
    figure6_grid()
