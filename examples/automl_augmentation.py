"""Powering an AutoML service with task-based dataset search (Figure 4 style).

Runs Mileena's search-then-AutoML service next to the ARDA, Novelty, and
AutoML-only baselines under a simulated 10-minute budget and prints the
utility/latency table.

Run with:  python examples/automl_augmentation.py
"""

from repro.core import Mileena, MileenaAutoMLService, SearchRequest, SimulatedClock
from repro.datasets import CorpusSpec, generate_corpus
from repro.experiments import Figure4Config, run_figure4


def service_walkthrough() -> None:
    """Drive the AutoML service directly on a small corpus."""
    corpus = generate_corpus(CorpusSpec(num_datasets=20, requester_rows=300, seed=0))
    platform = Mileena(clock=SimulatedClock())
    platform.register_corpus(corpus.providers)

    service = MileenaAutoMLService(platform=platform, clock=SimulatedClock())
    request = SearchRequest(
        train=corpus.train, test=corpus.test, target=corpus.target, max_augmentations=4
    )
    outcome = service.run(request, time_budget_seconds=600.0)
    print("Mileena AutoML service")
    print(f"  augmentations: {[c.describe() for c in outcome.search_result.plan.candidates]}")
    print(f"  proxy/final-model R2: {outcome.proxy_test_r2:.3f}")
    print(f"  AutoML R2 ({outcome.automl_best_model}): {outcome.automl_test_r2:.3f}\n")


def figure4_comparison() -> None:
    """The full five-system comparison with simulated latencies."""
    config = Figure4Config(
        corpus_spec=CorpusSpec(num_datasets=40, requester_rows=300, seed=0),
        time_budget_seconds=600.0,
    )
    result = run_figure4(config)
    print("Figure 4 — utility vs. runtime (simulated clock, 10 min budget)")
    print(result.format())


if __name__ == "__main__":
    service_walkthrough()
    figure4_comparison()
