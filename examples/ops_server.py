"""Live ops server: scraping a running gateway over HTTP.

Starts a gateway with ``GatewayConfig(ops_port=0)`` — which brings up the
threaded stdlib ops server on an ephemeral port — drives a small search
workload through it, then hits every endpoint the way an operator (or a
Prometheus scraper, or a load balancer's health probe) would:

* ``/metrics`` — OpenMetrics exposition, parsed back with the validating
  parser to prove it is scrapeable;
* ``/health`` — readiness (200 here: no SLO pages, breaker closed);
* ``/ops`` ``/slo`` ``/traces`` — the operator surfaces as JSON/text;
* ``/traces/<id>`` — one retained trace, found via a histogram exemplar.

Exits non-zero if any endpoint misbehaves, so CI runs this file as the
ops-server smoke test.

Run with:  PYTHONPATH=src python examples/ops_server.py
"""

import json
import sys
from urllib.request import urlopen

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.obs import parse_openmetrics
from repro.serving import Gateway, GatewayConfig


def fetch(url: str) -> tuple[int, str]:
    with urlopen(url, timeout=10.0) as response:
        return response.status, response.read().decode("utf-8")


def main() -> int:
    corpus = generate_corpus(CorpusSpec(num_datasets=14, requester_rows=150, seed=0))
    platform = Mileena.sharded(num_shards=2)
    platform.register_corpus(corpus.providers)

    # ops_port=0 binds an ephemeral port; sample everything so /traces has
    # content and every histogram bucket carries an exemplar.
    config = GatewayConfig(
        max_workers=2,
        ops_port=0,
        trace_sample_rate=1.0,
        slow_trace_seconds=0.0,
    )
    with Gateway(platform, config) as gateway:
        requests = [
            SearchRequest(
                train=corpus.train,
                test=corpus.test,
                target=corpus.target,
                max_augmentations=1 + (index % 3),
            )
            for index in range(6)
        ]
        gateway.run_many(requests, time_budget_seconds=120.0)

        base = gateway.ops_server.url
        print(f"ops server listening on {base}")

        status, text = fetch(f"{base}/metrics")
        assert status == 200, f"/metrics answered {status}"
        families = parse_openmetrics(text)
        print(f"/metrics: {len(families)} families, parseable OpenMetrics")

        status, text = fetch(f"{base}/health")
        assert status == 200, f"/health answered {status}: {text}"
        health = json.loads(text)
        print(f"/health: {health['status']} (paging={health['paging_slos']})")

        status, text = fetch(f"{base}/slo")
        assert status == 200, f"/slo answered {status}"
        for slo in json.loads(text)["slo"]:
            print(f"/slo: {slo['name']}: {slo['state']}")

        status, text = fetch(f"{base}/ops")
        assert status == 200, f"/ops answered {status}"
        print(f"/ops: {len(text.splitlines())} report lines")

        status, text = fetch(f"{base}/traces")
        assert status == 200, f"/traces answered {status}"
        traces = json.loads(text)["traces"]
        assert traces, "no traces retained at sample_rate=1.0"
        print(f"/traces: {len(traces)} retained")

        # Follow a histogram exemplar from the exposition to its trace.
        exemplars = families["gateway_service_seconds"]["exemplars"]
        assert exemplars, "service histogram carries no exemplars"
        exemplar_labels, _ = next(iter(exemplars.values()))
        trace_id = dict(exemplar_labels)["trace_id"]
        status, text = fetch(f"{base}/traces/{trace_id}")
        assert status == 200, f"/traces/{trace_id} answered {status}"
        detail = json.loads(text)
        print(f"/traces/{trace_id}: {len(detail['records'])} spans via exemplar")
        print()
        print(detail["rendered"])
    print("ops server smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
