"""Causal inference on semi-ring statistics (§4.2).

Demonstrates (1) factorized conditional-independence tests and pairwise
causal direction, and (2) the differentially private treatment-effect
comparison: backdoor over a privatised join vs. the marginal-based formula.

Run with:  python examples/causal_inference.py
"""

import numpy as np

from repro.causal import (
    PrivateAteExperiment,
    fisher_z_test,
    pairwise_direction,
    student_study_dag,
)
from repro.datasets import CausalStudySpec, generate_causal_study
from repro.semiring import CovarianceElement


def discovery_walkthrough() -> None:
    dag = student_study_dag()
    print("causal diagram:", dag.describe())
    print("backdoor set for T -> Y:", dag.backdoor_adjustment_set("T", "Y"))

    # Factorized CI test: the chain x -> y -> z from a covariance sketch only.
    rng = np.random.default_rng(0)
    x = rng.uniform(size=5000)
    y = 2 * x + rng.uniform(size=5000)
    z = y + rng.normal(scale=0.2, size=5000)
    element = CovarianceElement.from_matrix(("x", "y", "z"), np.column_stack([x, y, z]))
    print("x ⟂ z ?        ", fisher_z_test(element, "x", "z").independent)
    print("x ⟂ z | y ?    ", fisher_z_test(element, "x", "z", ["y"]).independent)
    print("direction x~y: ", pairwise_direction(x, y).direction, "\n")


def private_ate_walkthrough() -> None:
    study = generate_causal_study(CausalStudySpec(num_students=20_000, seed=0))
    result = PrivateAteExperiment(epsilon=1.0, rng=np.random.default_rng(0)).run(study)
    print(f"true ATE:                       {result.ate_true:.4f}")
    print(f"naive difference:               {result.naive_estimate:.4f}")
    print(f"backdoor over privatized join:  {result.backdoor_estimate:.4f} "
          f"({100 * result.backdoor_relative_error:.2f}% relative error)")
    print(f"marginal-based formula:         {result.mediator_estimate:.4f} "
          f"({100 * result.mediator_relative_error:.2f}% relative error)")


if __name__ == "__main__":
    discovery_walkthrough()
    private_ate_walkthrough()
