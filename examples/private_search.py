"""Differentially private dataset search with the Factorized Privacy Mechanism.

Compares the utility of the augmentations selected by a non-private search,
an FPM-private search, and the APM/TPM baselines on the same corpus — a
miniature of the paper's Figure 5.

Run with:  python examples/private_search.py
"""

from repro.datasets import CorpusSpec, generate_corpus
from repro.experiments import Figure5Config, MECHANISMS, run_figure5a
from repro.core import Mileena, SearchRequest
from repro.privacy import PrivacyAccountant, PrivacyBudget


def single_private_search() -> None:
    """One private request end to end, with budget accounting."""
    corpus = generate_corpus(CorpusSpec(num_datasets=20, requester_rows=300, seed=1))
    platform = Mileena()
    for relation in corpus.providers:
        # Each provider registers its dataset under its own (eps, delta).
        platform.register_dataset(relation, epsilon=1.0, delta=1e-5)

    request = SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        epsilon=1.0,          # the requester's own sketches are privatised too
        max_augmentations=3,
    )
    result = platform.search(request)
    print("private search plan:")
    print(result.plan.describe())
    print(f"final test R2 (non-private evaluation of the plan): "
          f"{result.final_report.test_r2:.3f}\n")

    # Budgets compose: a second release against the same dataset would be refused.
    accountant = PrivacyAccountant()
    accountant.register("zone_income_stats", PrivacyBudget(1.0, 1e-5))
    accountant.spend("zone_income_stats", PrivacyBudget(1.0, 1e-5))
    print(f"zone_income_stats releases so far: {accountant.releases('zone_income_stats')}")
    print(f"remaining epsilon: {accountant.remaining('zone_income_stats').epsilon:.3f}\n")


def mechanism_comparison() -> None:
    """The Figure 5(a) comparison at a small scale."""
    config = Figure5Config(corpus_size=20, runs=2, requester_rows=250, epsilon=1.0, seed=3)
    result = run_figure5a(config)
    print("mechanism comparison (median non-private R2 of the selected plan):")
    for mechanism in MECHANISMS:
        print(f"  {mechanism:>6}: {result.median_utility(mechanism):.3f}")


if __name__ == "__main__":
    single_private_search()
    mechanism_comparison()
