"""Quickstart: register a corpus, submit a task, inspect the augmentation plan.

Run with:  python examples/quickstart.py
"""

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus


def main() -> None:
    # 1. Generate a small synthetic open-data corpus plus a requester task.
    #    The requester wants to predict `demand` from its own (weak) local
    #    features; the predictive signal lives in joinable provider tables.
    corpus = generate_corpus(CorpusSpec(num_datasets=25, requester_rows=300, seed=0))
    print(f"corpus: {len(corpus.providers)} provider datasets")
    print(f"requester train: {corpus.train.num_rows} rows, columns={corpus.train.columns}")

    # 2. Stand up the platform and register every provider dataset.
    #    (Pass epsilon=... to privatise the uploaded sketches.)
    platform = Mileena()
    accepted = platform.register_corpus(corpus.providers)
    print(f"registered {accepted} datasets")

    # 3. Submit a task-based search request.
    request = SearchRequest(
        train=corpus.train,
        test=corpus.test,
        target=corpus.target,
        max_augmentations=4,
    )
    result = platform.search(request)

    # 4. Inspect the plan and the final model.
    print("\naugmentation plan:")
    print(result.plan.describe())
    print(f"\nproxy test R2:  {result.proxy_test_r2:.3f}")
    print(f"final test R2:  {result.final_report.test_r2:.3f}")
    print(f"features used:  {result.final_report.feature_names}")
    print(f"search took {result.elapsed_seconds:.2f}s over "
          f"{result.candidates_considered} discovered candidates")


if __name__ == "__main__":
    main()
