"""Serving gateway: many concurrent requesters against a sharded platform.

The multi-tenant deployment of Figure 1: provider sketches live in a
sharded store/index, and requests flow through a gateway that schedules
them on a pluggable execution backend, enforces per-request deadlines,
coalesces duplicate work, and memoises results in an epoch-keyed LRU cache.

Backends: ``thread`` (default), ``process`` (true multi-core — each worker
process bootstraps a platform replica from pickled registrations), and
``async`` (asyncio coalescing).  All three return identical results.

Run with:  PYTHONPATH=src python examples/serving_gateway.py [backend]
"""

import sys

from repro.core import Mileena, SearchRequest
from repro.datasets import CorpusSpec, generate_corpus
from repro.serving import Gateway, GatewayConfig


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "process"

    # 1. Generate a synthetic open-data corpus and a requester task.
    corpus = generate_corpus(CorpusSpec(num_datasets=25, requester_rows=300, seed=0))

    # 2. Stand up a *sharded* platform: the sketch store and discovery index
    #    are partitioned across 4 shards by dataset-name hash, and return
    #    results identical to the flat variants.  ``backend=`` records the
    #    preferred execution backend; the gateway picks it up.
    platform = Mileena.sharded(num_shards=4, backend=backend)
    accepted = platform.register_corpus(corpus.providers)
    print(
        f"registered {accepted} datasets across "
        f"{platform.corpus.sketches.num_shards} shards; backend={backend}"
    )

    # 3. Put the gateway in front: 4 workers, bounded queue, result cache.
    #    With the process backend the platform (relations + prebuilt
    #    sketches) is pickled into every worker once at startup; requests
    #    and results cross the process boundary as picklable envelopes.
    config = GatewayConfig(max_workers=4, max_pending=32, cache_capacity=128)
    with Gateway(platform, config) as gateway:
        # 4. Sixteen requesters submit concurrently; many share the same task
        #    (popular requester relations repeat on a shared platform), so the
        #    gateway answers most of them from its cache or by coalescing
        #    with an identical in-flight request.
        requests = [
            SearchRequest(
                train=corpus.train,
                test=corpus.test,
                target=corpus.target,
                max_augmentations=1 + (index % 4),
            )
            for index in range(16)
        ]
        responses = gateway.run_many(requests, time_budget_seconds=120.0)

        for response in responses:
            if not response.ok:
                print(
                    f"request {response.request_id:>2}: {response.status}"
                    f"  ({response.error})"
                )
                continue
            result = response.result
            print(
                f"request {response.request_id:>2}: {response.status}"
                f"  cache_hit={response.cache_hit}"
                f"  plan={[c.dataset for c in result.plan.candidates]}"
                f"  test_r2={result.final_test_r2:.3f}"
            )

        # 5. The metrics registry has counters and latency histograms for
        #    every stage (admission, queue wait, service time, cache).
        print("\nserving metrics:")
        print(gateway.metrics.render())


if __name__ == "__main__":
    main()
